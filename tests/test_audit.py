"""Tests for the cross-replica safety auditor.

The auditor has to be trustworthy in both directions: a clean run must
audit SAFE, and each invariant must actually fire when its precondition
is broken.  The violation tests run a real cluster and then corrupt one
replica's state (or the auditor's observed reply trace) in precisely the
way the invariant guards against.
"""

import pytest

from repro.fabric.audit import (
    AuditViolation,
    SafetyAuditor,
    SafetyViolation,
    audit_cluster,
)
from repro.fabric.cluster import Cluster, ClusterConfig


def run_clean_cluster(protocol="poe-mac", **overrides):
    config = ClusterConfig(
        protocol=protocol, num_replicas=4, batch_size=10, total_batches=10,
        request_timeout_ms=100.0, checkpoint_interval=5, seed=5, **overrides,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=60_000)
    return cluster, auditor


class TestCleanRuns:
    @pytest.mark.parametrize("protocol",
                             ["poe", "poe-mac", "poe-ts", "pbft", "sbft",
                              "zyzzyva", "hotstuff"])
    def test_fault_free_run_audits_safe(self, protocol):
        cluster, auditor = run_clean_cluster(protocol)
        report = auditor.check()  # must not raise
        assert report.ok
        assert report.replicas_audited == 4
        assert report.slots_checked > 0
        assert report.completions_checked == 10

    def test_report_counts_completions_and_slots(self):
        _, auditor = run_clean_cluster()
        report = auditor.report()
        assert report.completions_checked == 10
        assert report.slots_checked >= 10
        assert "SAFE" in report.summary()


class TestAgreementInvariant:
    def test_divergent_block_at_same_slot_is_flagged(self):
        cluster, auditor = run_clean_cluster()
        victim = cluster.replicas[1]
        # Rewrite the victim's last block with a different batch digest, as
        # if it had executed a conflicting batch at that slot.
        head = victim.blockchain.head
        victim.blockchain.truncate_after(head.sequence - 1)
        victim.blockchain.append(sequence=head.sequence,
                                 batch_digest=b"conflicting-batch",
                                 view=head.view, payload=head.payload)
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "divergent-prefix" in kinds
        with pytest.raises(SafetyViolation):
            auditor.check()

    def test_same_batch_at_two_slots_is_flagged(self):
        cluster, auditor = run_clean_cluster()
        victim = cluster.replicas[1]
        first = victim.blockchain.blocks()[0]
        head = victim.blockchain.head
        victim.blockchain.truncate_after(head.sequence - 1)
        # Re-execute the first batch at the victim's head slot.
        victim.blockchain.append(sequence=head.sequence,
                                 batch_digest=first.batch_digest,
                                 view=head.view, payload=first.payload)
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "duplicate-execution" in kinds

    def test_byzantine_replica_is_excluded_from_agreement(self):
        cluster, auditor = run_clean_cluster()
        victim = cluster.replicas[0]
        head = victim.blockchain.head
        victim.blockchain.truncate_after(head.sequence - 1)
        victim.blockchain.append(sequence=head.sequence,
                                 batch_digest=b"conflicting-batch",
                                 view=head.view, payload=head.payload)
        cluster.byzantine_ids.append(victim.node_id)
        report = auditor.report()
        assert report.ok
        assert report.replicas_audited == 3


class TestLedgerInvariant:
    def test_broken_hash_chain_is_flagged(self):
        cluster, auditor = run_clean_cluster()
        victim = cluster.replicas[2]
        block = victim.blockchain.blocks()[3]
        object.__setattr__(block, "parent_hash", b"severed")
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "broken-chain" in kinds

    def test_ledger_state_skew_is_flagged(self):
        cluster, auditor = run_clean_cluster()
        victim = cluster.replicas[2]
        victim.executor.last_executed_sequence += 3
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "ledger-state-skew" in kinds


class TestRollbackInvariant:
    def test_rollback_past_stable_checkpoint_is_flagged(self):
        cluster, auditor = run_clean_cluster()
        cluster.replicas[1].rollback_log.append((2, 5))  # target < checkpoint
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "rollback-past-checkpoint" in kinds
        assert report.rollbacks_checked == 1

    def test_rollback_at_or_above_checkpoint_is_fine(self):
        cluster, auditor = run_clean_cluster()
        cluster.replicas[1].rollback_log.append((5, 5))
        cluster.replicas[2].rollback_log.append((9, 5))
        assert auditor.report().ok


class TestInformQuorumInvariant:
    def test_missing_reply_quorum_is_flagged(self):
        cluster, auditor = run_clean_cluster()
        pool = cluster.pools[0]
        batch_id = pool.completions[0].batch_id
        # Pretend the network only ever delivered one matching reply.
        votes = auditor._reply_votes[(pool.node_id, batch_id)]
        for senders in votes.values():
            single, at_ms = next(iter(senders.items()))
            senders.clear()
            senders[single] = at_ms
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "inform-quorum" in kinds

    def test_audit_cluster_skips_inform_check_without_observer(self):
        config = ClusterConfig(protocol="poe-mac", num_replicas=4, batch_size=10,
                               total_batches=10, seed=5)
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=60_000)
        report = audit_cluster(cluster)
        assert report.ok
        assert report.completions_checked == 0
        assert report.slots_checked > 0


def test_violation_renders_kind_and_detail():
    violation = AuditViolation(kind="divergent-prefix", detail="slot 3 ...")
    assert "divergent-prefix" in str(violation)
    assert "slot 3" in str(violation)
