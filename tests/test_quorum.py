"""Aggregated quorum counters: bitset semantics and per-protocol regressions.

The large-n scaling pass replaced per-slot ``Set[str]`` vote bookkeeping
with index-keyed bitsets (:class:`repro.protocols.quorum.VoteSet`) in PoE
MAC support counting, PBFT prepare/commit, checkpoint votes and the
client pools.  These tests pin the semantics the replacement must
preserve: duplicate votes count once, votes after quorum change nothing,
vote identity stays bound to the transport-level sender (a forged
``replica_id`` in the payload must not mint extra votes), and unknown
voter identifiers still count through the overflow path instead of being
silently dropped.
"""

import pytest

from repro.core.replica import PoeReplica
from repro.core.messages import PoeSupport
from repro.crypto.authenticator import SchemeKind, make_authenticators
from repro.fabric.audit import SafetyAuditor
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.net.byzantine import ByzantineSpec
from repro.protocols.base import NodeConfig
from repro.protocols.checkpoint import CheckpointTracker
from repro.protocols.pbft import PbftCommit, PbftPrepare, PbftReplica
from repro.protocols.quorum import VoteSet, build_index_map
from repro.workload.transactions import make_no_op_batch


REPLICAS = [f"replica:{i}" for i in range(4)]


@pytest.fixture
def auths():
    return make_authenticators(REPLICAS, ["client:0"], seed=b"quorum-tests")


def make_config(**overrides):
    defaults = dict(replica_ids=REPLICAS, batch_size=3, checkpoint_interval=10)
    defaults.update(overrides)
    return NodeConfig(**defaults)


class TestVoteSet:
    def test_first_seen_and_duplicates(self):
        votes = VoteSet(build_index_map(REPLICAS))
        assert votes.add("replica:1") is True
        assert votes.add("replica:1") is False
        assert votes.add("replica:3") is True
        assert len(votes) == 2
        assert votes.count == 2

    def test_contains_and_iteration_match_set_semantics(self):
        votes = VoteSet(build_index_map(REPLICAS))
        for voter in ("replica:2", "replica:0", "replica:2"):
            votes.add(voter)
        assert "replica:2" in votes
        assert "replica:1" not in votes
        assert set(votes) == {"replica:0", "replica:2"}
        assert sorted(votes) == ["replica:0", "replica:2"]
        assert frozenset(votes) == frozenset({"replica:0", "replica:2"})

    def test_unknown_voters_use_the_overflow_path(self):
        votes = VoteSet(build_index_map(REPLICAS))
        assert votes.add("definitely-not-a-replica") is True
        assert votes.add("definitely-not-a-replica") is False
        votes.add("replica:0")
        assert len(votes) == 2
        assert "definitely-not-a-replica" in votes
        assert set(votes) == {"replica:0", "definitely-not-a-replica"}

    def test_without_index_map_behaves_like_a_set(self):
        votes = VoteSet()
        assert votes.add("a") and votes.add("b") and not votes.add("a")
        assert len(votes) == 2 and set(votes) == {"a", "b"}

    def test_bool_and_empty(self):
        votes = VoteSet(build_index_map(REPLICAS))
        assert not votes and len(votes) == 0 and set(votes) == set()
        votes.add("replica:63")  # outside the map
        assert votes

    def test_large_indices(self):
        ids = [f"replica:{i}" for i in range(128)]
        votes = VoteSet(build_index_map(ids))
        for rid in ids:
            votes.add(rid)
        assert len(votes) == 128
        assert set(votes) == set(ids)


class TestPoeMacSupportCounting:
    def _replica(self, auths, node_id="replica:1"):
        replica = PoeReplica(node_id, make_config(), auths[node_id],
                             scheme=SchemeKind.MACS)
        return replica

    def _supported_slot(self, replica, sequence=0):
        batch = make_no_op_batch("b-0", "client:0", 3)
        primary = REPLICAS[0]
        from repro.core.messages import PoePropose
        replica.deliver(primary, PoePropose(view=0, sequence=sequence, batch=batch), 0.0)
        return replica._slot(0, sequence)

    def test_duplicate_support_counts_once(self, auths):
        replica = self._replica(auths)
        slot = self._supported_slot(replica)
        before = slot.support_votes.count
        message = PoeSupport(view=0, sequence=0,
                             proposal_digest=slot.proposal_digest,
                             replica_id="replica:2")
        replica.deliver("replica:2", message, 1.0)
        replica.deliver("replica:2", message, 2.0)
        assert slot.support_votes.count == before + 1

    def test_forged_replica_id_counts_as_the_transport_sender(self, auths):
        """One Byzantine sender spamming forged identities gets one vote."""
        replica = self._replica(auths)
        slot = self._supported_slot(replica)
        before = slot.support_votes.count
        for forged in ("replica:2", "replica:3", "replica:0"):
            message = PoeSupport(view=0, sequence=0,
                                 proposal_digest=slot.proposal_digest,
                                 replica_id=forged)
            replica.deliver("replica:3", message, 1.0)
        # Three forged identities from one channel: exactly one new voter,
        # and it is the transport sender, not any of the claimed ids.
        assert slot.support_votes.count == before + 1
        assert "replica:3" in slot.support_votes
        assert "replica:2" not in slot.support_votes

    def test_late_vote_after_quorum_changes_nothing(self, auths):
        replica = self._replica(auths)
        slot = self._supported_slot(replica)
        # nf = 3 at n=4: primary (counted from the PROPOSE) + self + one more.
        replica.deliver("replica:2", PoeSupport(
            view=0, sequence=0, proposal_digest=slot.proposal_digest,
            replica_id="replica:2"), 1.0)
        assert slot.certified
        executed_before = replica.executed_batches
        output = replica.deliver("replica:3", PoeSupport(
            view=0, sequence=0, proposal_digest=slot.proposal_digest,
            replica_id="replica:3"), 2.0)
        assert replica.executed_batches == executed_before
        assert output.actions == []  # a pure no-op delivery

    def test_fused_fast_path_is_installed_only_when_unpatched(self, auths):
        fast = PoeReplica("replica:1", make_config(), auths["replica:1"],
                          scheme=SchemeKind.MACS)
        assert fast._dispatch[PoeSupport].__func__ is \
            PoeReplica._handle_support_mac_fast
        threshold = PoeReplica("replica:1", make_config(), auths["replica:1"],
                               scheme=SchemeKind.THRESHOLD)
        assert threshold._dispatch[PoeSupport].__func__ is \
            PoeReplica.handle_support

    def test_fused_fast_path_steps_aside_for_monkeypatches(self, auths, monkeypatch):
        recorded = []

        def patched(self, sender, message, slot, now_ms):
            recorded.append(sender)

        monkeypatch.setattr(PoeReplica, "_handle_mac_support", patched)
        replica = PoeReplica("replica:1", make_config(), auths["replica:1"],
                             scheme=SchemeKind.MACS)
        assert replica._dispatch[PoeSupport].__func__ is PoeReplica.handle_support
        slot = self._supported_slot(replica)
        replica.deliver("replica:2", PoeSupport(
            view=0, sequence=0, proposal_digest=slot.proposal_digest), 1.0)
        assert recorded == ["replica:2"]


class TestPbftVoteCounting:
    def _prepared_replica(self, auths, node_id="replica:1"):
        replica = PbftReplica(node_id, make_config(), auths[node_id])
        batch = make_no_op_batch("b-0", "client:0", 3)
        from repro.protocols.pbft import PbftPrePrepare
        replica.deliver(REPLICAS[0], PbftPrePrepare(view=0, sequence=0, batch=batch), 0.0)
        return replica, replica._slot(0, 0)

    def test_duplicate_prepare_counts_once(self, auths):
        replica, slot = self._prepared_replica(auths)
        before = slot.prepare_votes.count
        message = PbftPrepare(view=0, sequence=0, batch_digest=slot.batch_digest,
                              replica_id="replica:2")
        replica.deliver("replica:2", message, 1.0)
        replica.deliver("replica:2", message, 2.0)
        assert slot.prepare_votes.count == before + 1

    def test_forged_prepare_identities_count_as_one_sender(self, auths):
        replica, slot = self._prepared_replica(auths)
        before = slot.prepare_votes.count
        for forged in REPLICAS:
            replica.deliver("replica:3", PbftPrepare(
                view=0, sequence=0, batch_digest=slot.batch_digest,
                replica_id=forged), 1.0)
        assert slot.prepare_votes.count == before + 1
        assert not slot.prepared

    def test_commit_votes_before_prepare_still_accumulate(self, auths):
        replica, slot = self._prepared_replica(auths)
        replica.deliver("replica:2", PbftCommit(
            view=0, sequence=0, batch_digest=slot.batch_digest,
            replica_id="replica:2"), 1.0)
        assert slot.commit_votes.count == 1
        assert not slot.committed

    def test_commit_quorum_executes_and_late_commits_are_noops(self, auths):
        replica, slot = self._prepared_replica(auths)
        for sender in ("replica:2", "replica:3"):
            replica.deliver(sender, PbftPrepare(
                view=0, sequence=0, batch_digest=slot.batch_digest), 1.0)
        assert slot.prepared
        for sender in ("replica:2", "replica:3"):
            replica.deliver(sender, PbftCommit(
                view=0, sequence=0, batch_digest=slot.batch_digest), 2.0)
        assert slot.committed
        assert replica.executed_batches == 1
        output = replica.deliver("replica:0", PbftCommit(
            view=0, sequence=0, batch_digest=slot.batch_digest), 3.0)
        assert replica.executed_batches == 1
        assert output.actions == []


class TestCheckpointVoteCounting:
    def test_duplicate_checkpoint_votes_do_not_stabilise(self):
        tracker = CheckpointTracker(quorum=3, index_map=build_index_map(REPLICAS))
        assert tracker.record_vote(9, b"d", "replica:0") is None
        assert tracker.record_vote(9, b"d", "replica:0") is None
        assert tracker.record_vote(9, b"d", "replica:1") is None
        assert tracker.stable_sequence == -1
        assert tracker.record_vote(9, b"d", "replica:2") == 9
        assert tracker.stable_sequence == 9

    def test_votes_split_by_digest(self):
        tracker = CheckpointTracker(quorum=2, index_map=build_index_map(REPLICAS))
        tracker.record_vote(9, b"one", "replica:0")
        assert tracker.record_vote(9, b"two", "replica:1") is None
        assert tracker.record_vote(9, b"one", "replica:2") == 9


class TestAuditorBackedRegressions:
    """Full adversarial runs through the aggregated counters."""

    def _run(self, protocol, behavior, **overrides):
        config = ClusterConfig(
            protocol=protocol, num_replicas=4, batch_size=10,
            total_batches=8, request_timeout_ms=100.0, checkpoint_interval=5,
            byzantine=ByzantineSpec(behavior=behavior, replica_index=0),
            seed=7, **overrides,
        )
        cluster = Cluster(config)
        auditor = SafetyAuditor.attach(cluster)
        cluster.start()
        cluster.run_until_done(max_ms=60_000)
        return cluster, auditor

    def test_pbft_replayed_votes_stay_safe(self):
        """Duplicate PREPARE/COMMIT floods must be absorbed idempotently."""
        cluster, auditor = self._run("pbft", "replay")
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)

    def test_poe_mac_spoofed_votes_stay_safe(self):
        """Forged-sender supports must not certify a slot (bitset keyed by
        the transport sender, exactly like the set it replaced)."""
        cluster, auditor = self._run("poe-mac", "equivocate-spoof")
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)
        live = [r for r in cluster.replicas if not r.crashed
                and r.node_id != replica_id(0)]
        assert max(r.view for r in live) >= 1
