"""Tests for the message-delay simulation (Figure 11)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.delay_model import (
    PROTOCOL_ROUNDS,
    simulate_decisions,
    simulate_out_of_order,
    sweep_delays,
)


class TestSequentialSimulation:
    def test_throughput_is_rounds_times_delay(self):
        result = simulate_decisions("poe", 4, message_delay_ms=10.0, decisions=500)
        assert result.throughput_decisions_per_s == pytest.approx(1000.0 / 30.0)

    def test_poe_and_pbft_equal_and_slower_than_hotstuff(self):
        """Figure 11: PoE/PBFT run at roughly two thirds of HotStuff's rate."""
        poe = simulate_decisions("poe", 16, 20.0)
        pbft = simulate_decisions("pbft", 16, 20.0)
        hotstuff = simulate_decisions("hotstuff", 16, 20.0)
        assert poe.throughput_decisions_per_s == pytest.approx(
            pbft.throughput_decisions_per_s)
        ratio = poe.throughput_decisions_per_s / hotstuff.throughput_decisions_per_s
        assert ratio == pytest.approx(2.0 / 3.0, rel=0.01)

    def test_doubling_delay_halves_throughput(self):
        slow = simulate_decisions("poe", 4, 40.0)
        fast = simulate_decisions("poe", 4, 20.0)
        assert fast.throughput_decisions_per_s == pytest.approx(
            2 * slow.throughput_decisions_per_s)

    def test_throughput_independent_of_replica_count(self):
        """Without out-of-order processing, only delay and round count matter."""
        small = simulate_decisions("pbft", 4, 10.0)
        large = simulate_decisions("pbft", 128, 10.0)
        assert small.throughput_decisions_per_s == pytest.approx(
            large.throughput_decisions_per_s)

    def test_message_counts_reflect_protocol_complexity(self):
        pbft = simulate_decisions("pbft", 16, 10.0, decisions=10)
        poe = simulate_decisions("poe", 16, 10.0, decisions=10)
        assert pbft.messages_processed > poe.messages_processed

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            simulate_decisions("raft", 4, 10.0)


class TestOutOfOrderSimulation:
    def test_out_of_order_multiplies_throughput_by_window(self):
        sequential = simulate_decisions("poe", 128, 10.0, decisions=500)
        pipelined = simulate_out_of_order("poe", 128, 10.0, decisions=500, window=250)
        speedup = (pipelined.throughput_decisions_per_s
                   / sequential.throughput_decisions_per_s)
        # The paper reports a factor of roughly 200 with a window of 250.
        assert 150 <= speedup <= 250

    def test_window_of_one_equals_sequential(self):
        sequential = simulate_decisions("pbft", 16, 10.0)
        windowed = simulate_out_of_order("pbft", 16, 10.0, window=1)
        assert windowed.throughput_decisions_per_s == pytest.approx(
            sequential.throughput_decisions_per_s)

    def test_rows_are_serialisable(self):
        result = simulate_out_of_order("poe", 16, 10.0)
        row = result.row()
        assert row["protocol"] == "poe"
        assert row["ooo_window"] == 250


class TestSweep:
    def test_sweep_covers_full_grid(self):
        results = sweep_delays(protocols=("poe", "pbft"), replica_counts=(4, 16),
                               delays_ms=(10.0, 20.0), decisions=100)
        assert len(results) == 8

    def test_sweep_out_of_order_mode(self):
        results = sweep_delays(protocols=("poe",), replica_counts=(128,),
                               delays_ms=(10.0,), out_of_order=True, window=250)
        assert results[0].out_of_order_window == 250


@settings(max_examples=30, deadline=None)
@given(delay=st.floats(min_value=1.0, max_value=100.0),
       protocol=st.sampled_from(sorted(PROTOCOL_ROUNDS)))
def test_sequential_throughput_formula_property(delay, protocol):
    """Property: sequential decisions/s always equals 1000 / (rounds * delay)."""
    result = simulate_decisions(protocol, 16, delay, decisions=100)
    expected = 1000.0 / (PROTOCOL_ROUNDS[protocol] * delay)
    assert result.throughput_decisions_per_s == pytest.approx(expected, rel=1e-6)
