"""The robustness tier: adaptive adversaries, churn and topology drift.

PR 6 makes the fault matrix fight back.  The adaptive behaviours react to
live protocol state (target whoever is primary *now*, equivocate only
near checkpoint boundaries, ride the view-change retry schedule), the
churn column cycles replicas out of and back into the membership, and
the geo topology drifts its inter-region latencies mid-run.  Every new
cell must stay live and safe across seeds and at n = 7; each behaviour
has an engagement check proving the attack really fires, and a
revert-demo showing which fix keeps the cell green when it is
monkeypatched back out.

The sharpest corner is the forged view-change history raced against the
*first* checkpoint: with no stable checkpoint the reconciliation anchor
is -1 and every slot sits in the "speculative tail", where a single
honest witness used to be enough — and a forged history tying it came
down to a digest tiebreak.  The contested-slot rule in
``longest_consecutive_prefix`` closes that hole; its revert-demo shows
pbft executing fabricated batches without it.
"""

import dataclasses
from types import SimpleNamespace

import pytest

import repro.protocols.pbft as pbft_module
import repro.protocols.sbft as sbft_module
from repro.core.messages import PoeViewChangeRequest
from repro.core.view_change import _best_supported_entry
from repro.fabric.audit import SafetyAuditor
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.fabric.scenarios import (
    MATRIX_PROTOCOLS,
    SCENARIOS,
    ScenarioParams,
    geo_topology,
    unpack_recipe,
)
from repro.net.byzantine import (
    ByzantineSpec,
    CheckpointEquivocator,
    Delivery,
    EquivocatingPrimary,
    PrimaryTargeter,
    TimeoutStaller,
    make_behavior,
)
from repro.net.conditions import DriftPhase, LatencyTopology, NetworkConditions
from repro.net.faults import FaultSchedule
from repro.protocols.checkpoint import CheckpointTracker
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.replica_base import BatchingReplica

NEW_SCENARIOS = ("adaptive-primary", "checkpoint-equivocate", "timeout-stall",
                 "churn", "geo-drift", "forge-history-vc")


def run_cell(protocol, scenario, total_batches=20, seed=11, num_replicas=4,
             max_ms=60_000.0):
    """Run one fault-matrix cell and return (cluster, auditor)."""
    params = ScenarioParams(num_replicas=num_replicas,
                            total_batches=total_batches, seed=seed)
    faults, byzantine, conditions = unpack_recipe(SCENARIOS[scenario](params))
    config = ClusterConfig(
        protocol=protocol, num_replicas=params.num_replicas,
        batch_size=params.batch_size, num_clients=1,
        client_outstanding=params.client_outstanding,
        total_batches=total_batches,
        request_timeout_ms=params.request_timeout_ms,
        checkpoint_interval=params.checkpoint_interval,
        conditions=conditions, faults=faults, byzantine=byzantine, seed=seed,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=max_ms)
    return cluster, auditor


def run_early_crash_forged_vc(protocol, seed=11, total_batches=20):
    """The anchor = -1 forged-history corner: the primary crashes *before*
    the first checkpoint can stabilise, so the ensuing view change
    reconciles histories with no anchor at all — every slot is in the
    speculative tail where the forger's fabricated entries compete
    against honest ones.  Returns (cluster, auditor)."""
    faults = (FaultSchedule()
              .add_partition([replica_id(i) for i in range(3)], [replica_id(3)],
                             at_ms=0.0, until_ms=150.0)
              .add_crash(replica_id(0), at_ms=5.0))
    config = ClusterConfig(
        protocol=protocol, num_replicas=4, batch_size=10, num_clients=1,
        client_outstanding=4, total_batches=total_batches,
        request_timeout_ms=100.0, checkpoint_interval=5,
        faults=faults,
        byzantine=ByzantineSpec(behavior="forge-history", replica_index=2,
                                options={"pom_at_ms": 150.0}),
        seed=seed,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=60_000.0)
    return cluster, auditor


def completed(cluster):
    return len(cluster.completions())


def _old_prefix_selector(requests, f=0, trust_certificates=False):
    """The pre-contested-slot selector: above the anchor a single request
    always suffices, ties broken on the smallest digest — the hole the
    anchor = -1 forgery exploits."""
    max_checkpoint = max((r.stable_checkpoint for r in requests), default=-1)
    support, certified = {}, {}
    for request in requests:
        for entry in request.executed:
            batch_digest = entry.batch.digest()
            by_digest = support.setdefault(entry.sequence, {})
            by_digest.setdefault(batch_digest, []).append(entry)
            if trust_certificates and entry.certificate is not None:
                certified.setdefault(entry.sequence, {})[batch_digest] = True
    prefix = {}
    for sequence in sorted(s for s in support if s <= max_checkpoint):
        entry = _best_supported_entry(support, certified, sequence, f + 1)
        if entry is not None:
            prefix[sequence] = entry
    kmax = max_checkpoint
    while True:
        entry = _best_supported_entry(support, certified, kmax + 1, 1)
        if entry is None:
            break
        kmax += 1
        prefix[kmax] = entry
    return prefix, kmax


# --------------------------------------------------------------------------
# Adaptive behaviour layer units.
# --------------------------------------------------------------------------

class TestAdaptiveBehaviourLayer:
    def test_registry_knows_adaptive_behaviors(self):
        assert isinstance(make_behavior("adaptive-primary"), PrimaryTargeter)
        assert isinstance(make_behavior("checkpoint-equivocate"),
                          CheckpointEquivocator)
        assert isinstance(make_behavior("timeout-stall"), TimeoutStaller)

    def test_primary_targeter_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            PrimaryTargeter(mode="bribe")

    def test_checkpoint_equivocator_forks_only_the_boundary_window(self):
        behavior = CheckpointEquivocator(window=2)
        behavior.replica = SimpleNamespace(
            config=SimpleNamespace(checkpoint_interval=5))
        active = [behavior._equivocation_active(SimpleNamespace(sequence=s))
                  for s in range(10)]
        # Boundaries close at sequences 4 and 9; the last two slots of
        # each interval (3, 4 and 8, 9) are inside the window.
        assert active == [False, False, False, True, True,
                          False, False, False, True, True]

    def test_checkpoint_equivocator_without_interval_is_always_active(self):
        behavior = CheckpointEquivocator(window=2)
        behavior.replica = SimpleNamespace(
            config=SimpleNamespace(checkpoint_interval=0))
        assert behavior._equivocation_active(SimpleNamespace(sequence=1))

    def test_timeout_staller_delays_vc_broadcast_by_the_backoff(self):
        behavior = TimeoutStaller(lead_ms=10.0, max_stalls=2)
        behavior.replica = SimpleNamespace(
            config=SimpleNamespace(request_timeout_ms=100.0),
            _vc_failed_attempts=0, VC_BACKOFF_CAP=5)
        request = PoeViewChangeRequest(view=0, replica_id="replica:2")
        out = behavior.transform([Delivery("replica:1", request)], 50.0)
        # First failed attempt retries after 2 * timeout = 200ms; the
        # stalled vote lands lead_ms before that deadline.
        assert [d.delay_ms for d in out] == [190.0]
        assert behavior.stalls == 1

    def test_timeout_staller_stalls_each_view_once_within_budget(self):
        behavior = TimeoutStaller(lead_ms=10.0, max_stalls=2)
        behavior.replica = SimpleNamespace(
            config=SimpleNamespace(request_timeout_ms=100.0),
            _vc_failed_attempts=0, VC_BACKOFF_CAP=5)
        v0 = PoeViewChangeRequest(view=0, replica_id="replica:2")
        v1 = PoeViewChangeRequest(view=1, replica_id="replica:2")
        v2 = PoeViewChangeRequest(view=2, replica_id="replica:2")
        assert behavior.transform([Delivery("replica:1", v0)], 0.0)[0].delay_ms > 0
        # Same view again: already stalled, passes through untouched.
        assert behavior.transform([Delivery("replica:1", v0)], 0.0)[0].delay_ms == 0
        assert behavior.transform([Delivery("replica:1", v1)], 0.0)[0].delay_ms > 0
        # Budget (max_stalls = 2) spent: the third view is voted honestly.
        assert behavior.transform([Delivery("replica:1", v2)], 0.0)[0].delay_ms == 0

    def test_timeout_staller_leaves_other_messages_alone(self):
        behavior = TimeoutStaller()
        behavior.replica = SimpleNamespace(
            config=SimpleNamespace(request_timeout_ms=100.0),
            _vc_failed_attempts=0, VC_BACKOFF_CAP=5)
        message = SimpleNamespace(view=0)
        out = behavior.transform([Delivery("replica:1", message)], 0.0)
        assert out[0].delay_ms == 0


# --------------------------------------------------------------------------
# Engagement: the adaptive attacks really fire inside their cells.
# --------------------------------------------------------------------------

class TestAdaptiveEngagement:
    def test_primary_targeter_retargets_across_view_changes(self):
        # 40 batches: long enough that the second attack window (opened
        # only after the targeter's replica observes the first view
        # change) fires before the clients drain.
        cluster, auditor = run_cell("poe-mac", "adaptive-primary",
                                    total_batches=40)
        behavior = cluster.network._byzantine[replica_id(2)]
        assert completed(cluster) == 40
        assert auditor.report().ok
        # The campaign attacked two *distinct* primaries: view 0's, then —
        # after observing the view change through its own replica — the
        # newly elected one.  A static schedule can only ever name one.
        assert len(behavior.attacked) == 2
        assert behavior.attacked[0] == replica_id(0)
        assert len(set(behavior.attacked)) == 2
        assert any(replica.view > 0 for replica in cluster.replicas)

    def test_checkpoint_equivocator_forks_boundary_slots(self, monkeypatch):
        forked = []
        original = EquivocatingPrimary._equivocate

        def recording(self, message):
            forked.append(getattr(message, "sequence",
                                  getattr(message, "round_number", None)))
            return original(self, message)

        monkeypatch.setattr(EquivocatingPrimary, "_equivocate", recording)
        cluster, auditor = run_cell("pbft", "checkpoint-equivocate")
        assert completed(cluster) == 20
        assert auditor.report().ok
        assert forked, "the equivocator must actually fork proposals"
        interval = cluster.replicas[0].config.checkpoint_interval
        # Every forked slot sits in the two-slot window before a boundary.
        assert all(interval - 1 - (s % interval) < 2 for s in forked)

    def test_timeout_staller_spends_its_stall_budget(self):
        cluster, auditor = run_cell("sbft", "timeout-stall")
        behavior = cluster.network._byzantine[replica_id(2)]
        assert completed(cluster) == 20
        assert auditor.report().ok
        assert behavior.stalls >= 1
        assert any(replica.view > 0 for replica in cluster.replicas
                   if not replica.crashed)


# --------------------------------------------------------------------------
# Churn and topology.
# --------------------------------------------------------------------------

class TestChurnAndTopology:
    def test_churned_replicas_rejoin_and_catch_up(self):
        cluster, auditor = run_cell("pbft", "churn")
        assert completed(cluster) == 20
        assert auditor.report().ok
        # Both churned replicas are back in the membership and caught up:
        # the deposed primary rejoined behind the checkpoint horizon and
        # recovered through state transfer + deferred replay.
        for index in (0, 3):
            replica = cluster.network.node(replica_id(index))
            assert not replica.crashed
            assert replica.last_executed_sequence >= 0
        heights = sorted(r.last_executed_sequence for r in cluster.replicas)
        interval = cluster.replicas[0].config.checkpoint_interval
        assert heights[-1] - heights[0] <= 2 * interval

    def test_topology_intra_region_is_cheap(self):
        topology = geo_topology(ScenarioParams())
        # replicas 0 and 3 share us-east (round-robin over three regions).
        assert topology.latency_ms("replica:0", "replica:3", 0.0) == 0.3

    def test_topology_links_are_directional_and_asymmetric(self):
        topology = geo_topology(ScenarioParams())
        # us-east -> eu-west is 7ms while the reverse is 8ms.
        assert topology.latency_ms("replica:0", "replica:1", 0.0) == 7.0
        assert topology.latency_ms("replica:1", "replica:0", 0.0) == 8.0

    def test_topology_missing_direction_falls_back_to_reverse(self):
        topology = geo_topology(ScenarioParams())
        # Only us-east -> ap-south is configured; the reverse reuses it.
        assert topology.latency_ms("replica:2", "replica:0", 0.0) == 11.0

    def test_topology_unknown_nodes_use_the_default_region(self):
        topology = geo_topology(ScenarioParams())
        # Clients are unmapped, hence us-east: reaching eu-west costs the
        # configured 7ms, and another default-region node is intra.
        assert topology.latency_ms("client:0", "replica:1", 0.0) == 7.0
        assert topology.latency_ms("client:0", "replica:0", 0.0) == 0.3

    def test_topology_unconfigured_pair_uses_default_inter(self):
        topology = LatencyTopology(
            regions={"a": "r1", "b": "r2"}, default_inter_ms=42.0)
        assert topology.latency_ms("a", "b", 0.0) == 42.0

    def test_drift_phases_scale_latencies_deterministically(self):
        topology = geo_topology(ScenarioParams())
        base = topology.latency_ms("replica:0", "replica:1", 0.0)
        assert topology.latency_ms("replica:0", "replica:1", 50.0) == base * 2.0
        # Phase three eases the global scale but triples one specific
        # directional link (us-east -> ap-south).
        assert topology.latency_ms("replica:0", "replica:1", 150.0) == base * 1.3
        assert topology.latency_ms("replica:0", "replica:2", 150.0) \
            == pytest.approx(11.0 * 1.3 * 3.0)
        assert topology.latency_ms("replica:2", "replica:0", 150.0) \
            == pytest.approx(11.0 * 1.3)
        # The final phase heals everything.
        assert topology.latency_ms("replica:0", "replica:1", 300.0) == base

    def test_drift_schedule_is_sorted_on_construction(self):
        topology = LatencyTopology(
            regions={"a": "r1", "b": "r2"}, default_inter_ms=10.0,
            drift=(DriftPhase(at_ms=100.0, scale=3.0),
                   DriftPhase(at_ms=0.0, scale=1.0)))
        assert [phase.at_ms for phase in topology.drift] == [0.0, 100.0]
        assert topology.latency_ms("a", "b", 150.0) == 30.0

    def test_conditions_route_propagation_through_the_topology(self):
        conditions = NetworkConditions(
            latency_ms=0.5, jitter_ms=0.0, bandwidth_mbps=None,
            topology=geo_topology(ScenarioParams()), seed=1)
        early = conditions.propagation_ms("replica:0", "replica:1", now_ms=0.0)
        drifted = conditions.propagation_ms("replica:0", "replica:1", now_ms=50.0)
        assert early == 7.0
        assert drifted == 14.0


# --------------------------------------------------------------------------
# Every new cell: live and safe across seeds and at n = 7.
# --------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", MATRIX_PROTOCOLS)
@pytest.mark.parametrize("scenario", NEW_SCENARIOS)
def test_new_cells_live_and_safe_across_seeds(protocol, scenario):
    from repro.fabric.scenarios import run_scenario

    for seed in (3, 7, 42, 99):
        outcome = run_scenario(protocol, scenario, ScenarioParams(seed=seed))
        assert outcome.live and outcome.safe, (protocol, scenario, seed)
    outcome = run_scenario(protocol, scenario,
                           ScenarioParams(num_replicas=7, seed=11))
    assert outcome.live and outcome.safe, (protocol, scenario, "n=7")


# --------------------------------------------------------------------------
# The anchor = -1 forged-history corner.
# --------------------------------------------------------------------------

class TestForgedHistoryBeforeFirstCheckpoint:
    @pytest.mark.parametrize("protocol", ["poe-mac", "poe-ts", "pbft",
                                          "sbft", "hotstuff"])
    def test_early_crash_forged_vc_is_live_and_safe(self, protocol):
        cluster, auditor = run_early_crash_forged_vc(protocol)
        assert completed(cluster) == 20
        assert auditor.report().ok

    def test_pbft_runs_a_real_view_change_with_no_anchor(self):
        cluster, auditor = run_early_crash_forged_vc("pbft")
        assert completed(cluster) == 20
        assert auditor.report().ok
        survivors = [r for r in cluster.replicas if not r.crashed]
        assert any(replica.view >= 1 for replica in survivors)

    def test_zyzzyva_stalls_safely_beyond_its_fault_budget(self):
        # Two nominal faults (crashed primary + Byzantine forger) exceed
        # f = 1, so Zyzzyva owes no liveness here: replica 3 never
        # executed the speculative slots (it was dark while they ran), the
        # client can collect only two of the 2f + 1 local-commit acks its
        # certificate needs, and no checkpoint ever stabilises to open a
        # state-transfer path.  Safety must still hold — which is exactly
        # the speculation/recovery trade-off the paper's Figure 1 pins on
        # Zyzzyva — and the documented justification lives in
        # SCENARIOS.md (the matrix keeps the later-crash variant, where
        # all six protocols recover).
        cluster, auditor = run_early_crash_forged_vc("zyzzyva")
        assert completed(cluster) < 20
        assert auditor.report().ok

    def test_revert_demo_uncontested_tail_admits_the_forgery(self, monkeypatch):
        # Revert: restore the selector that let a lone forged history tie
        # a lone honest witness above the anchor and win on the digest
        # tiebreak.  With no stable checkpoint the anchor is -1, so the
        # forged sub-zero history is adopted wholesale and honest replicas
        # execute fabricated batches — the auditor must catch it.
        monkeypatch.setattr(pbft_module, "longest_consecutive_prefix",
                            _old_prefix_selector)
        monkeypatch.setattr(sbft_module, "longest_consecutive_prefix",
                            _old_prefix_selector)
        cluster, auditor = run_early_crash_forged_vc("pbft")
        report = auditor.report()
        assert not report.ok
        assert any(v.kind == "divergent-prefix" for v in report.violations)


# --------------------------------------------------------------------------
# Revert-demos: each closure is load-bearing for its cell.
# --------------------------------------------------------------------------

class TestRevertDemos:
    def test_revert_demo_blind_settle_loses_certified_blocks(self, monkeypatch):
        # Revert: the old HotStuff settle path queried the membership for
        # a missing QC only when it also missed the proposal.  Holding the
        # proposal proves nothing — the signed QC may exist only in the
        # next leader's local state when its pacemaker outran vote
        # aggregation — so under the adaptive primary attack a replica
        # settles past a certified block and forks the chain.
        original = HotStuffReplica._request_missing_proposal

        def only_when_proposal_missing(self, round_number, block_digest):
            if round_number in self._proposals:
                return
            original(self, round_number, block_digest)

        monkeypatch.setattr(HotStuffReplica, "_request_missing_proposal",
                            only_when_proposal_missing)
        broken = False
        for seed in (3, 11):
            cluster, auditor = run_cell("hotstuff", "adaptive-primary",
                                        seed=seed)
            report = auditor.report()
            if not report.ok or completed(cluster) < 20:
                broken = True
                break
        assert broken

    def test_staller_measurably_delays_recovery(self):
        # The staller never needed a new closure — its votes are
        # well-formed and merely late, and the existing retry/backoff
        # machinery absorbs them — so the demonstration here is that the
        # attack has *teeth*: against the identical crash schedule,
        # recovery with the staller finishes a large fraction of a backoff
        # window later than without it.  (No revert-demo exists for this
        # behaviour by construction: reverting the retry machinery does
        # not break the cell, because the stalled vote lands ``lead_ms``
        # before the deadline by design.)
        cluster, auditor = run_cell("sbft", "timeout-stall")
        assert completed(cluster) == 20
        assert auditor.report().ok
        stalled_done = max(r.completed_at_ms for r in cluster.completions())

        config = ClusterConfig(
            protocol="sbft", num_replicas=4, batch_size=10, num_clients=1,
            client_outstanding=4, total_batches=20, request_timeout_ms=100.0,
            checkpoint_interval=5,
            faults=FaultSchedule.primary_crash(replica_id(0), at_ms=2.0),
            seed=11,
        )
        honest = Cluster(config)
        SafetyAuditor.attach(honest)
        honest.start()
        honest.run_until_done(max_ms=60_000.0)
        honest_done = max(r.completed_at_ms for r in honest.completions())
        assert stalled_done > honest_done + 100.0

    def test_revert_demo_without_readvertising_the_dark_replica_wedges(
            self, monkeypatch):
        # Revert: drop the checkpoint re-advertisement on view-change
        # completion.  The replica partitioned through the checkpoint
        # boundary can never validate a state transfer and the cluster
        # wedges below quorum once the primary crashes.
        monkeypatch.setattr(BatchingReplica, "readvertise_stable_checkpoint",
                            lambda self: None)
        cluster, auditor = run_cell("zyzzyva", "forge-history-vc")
        assert completed(cluster) < 20
        assert auditor.report().ok

    def test_revert_demo_rearmed_timers_wedge_the_lagging_replica(
            self, monkeypatch):
        # Revert: let retransmissions of already-executed batches re-arm
        # the progress timer.  The healed replica keeps suspecting a
        # primary that long since served those batches, escalates view
        # changes nobody joins, and drifts its view out of the quorum.
        def rearm_always(self, batch_id, now_ms):
            if batch_id in self._progress_timers or batch_id in self._replied:
                return
            self._progress_timers.add(batch_id)
            self.set_timer(f"progress:{batch_id}",
                           self.config.request_timeout_ms, payload=batch_id)

        monkeypatch.setattr(BatchingReplica, "start_progress_timer",
                            rearm_always)
        cluster, auditor = run_cell("zyzzyva", "forge-history-vc")
        assert completed(cluster) < 20
        assert auditor.report().ok

    def test_revert_demo_transfer_without_batch_ids_breaks_sbft(
            self, monkeypatch):
        # Revert: strip the executed-batch-id journal from state-transfer
        # responses.  The catching-up replica installs the state but not
        # the dedup horizon, so retransmitted batches it "missed" are
        # re-proposed and re-executed behind the transferred prefix.
        original = BatchingReplica.handle_state_transfer_response

        def stripped(self, sender, message, now_ms):
            bare = dataclasses.replace(message, executed_batch_ids=())
            return original(self, sender, bare, now_ms)

        monkeypatch.setattr(BatchingReplica, "handle_state_transfer_response",
                            stripped)
        cluster, auditor = run_cell("sbft", "forge-history-vc")
        assert not auditor.report().ok or completed(cluster) < 20

    def test_revert_demo_checkpoint_votes_must_match_digests(self):
        # Unit-level revert for the boundary equivocator: the tracker
        # counts votes per (sequence, digest) pair, so a fork split across
        # the boundary can never be laundered into a stable checkpoint.
        # A lax tracker counting votes per sequence alone — the revert —
        # stabilises the forked boundary from the same vote stream.
        tracker = CheckpointTracker(quorum=3)
        assert tracker.record_vote(4, b"digest-a", "replica:0") is None
        assert tracker.record_vote(4, b"digest-a", "replica:1") is None
        assert tracker.record_vote(4, b"digest-b", "replica:2") is None
        assert tracker.stable_sequence == -1

        class LaxTracker(CheckpointTracker):
            def record_vote(self, sequence, state_digest, replica_id):
                return super().record_vote(sequence, b"", replica_id)

        lax = LaxTracker(quorum=3)
        lax.record_vote(4, b"digest-a", "replica:0")
        lax.record_vote(4, b"digest-a", "replica:1")
        assert lax.record_vote(4, b"digest-b", "replica:2") == 4
