"""Tests for the Shamir-based threshold signature scheme."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.authenticator import make_authenticators
from repro.crypto.threshold import (
    SignatureShare,
    ThresholdError,
    ThresholdScheme,
)


@pytest.fixture(scope="module")
def scheme():
    return ThresholdScheme.setup(num_shares=7, threshold=5, seed=b"threshold-tests")


class TestSetup:
    def test_setup_is_deterministic(self):
        a = ThresholdScheme.setup(4, 3, seed=b"x")
        b = ThresholdScheme.setup(4, 3, seed=b"x")
        assert a.share_value(1) == b.share_value(1)

    def test_different_seeds_give_different_shares(self):
        a = ThresholdScheme.setup(4, 3, seed=b"x")
        b = ThresholdScheme.setup(4, 3, seed=b"y")
        assert a.share_value(1) != b.share_value(1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ThresholdScheme.setup(2, 3, seed=b"x")
        with pytest.raises(ValueError):
            ThresholdScheme.setup(3, 0, seed=b"x")

    def test_share_index_out_of_range(self, scheme):
        with pytest.raises(ThresholdError):
            scheme.share_value(0)
        with pytest.raises(ThresholdError):
            scheme.share_value(8)


class TestSignAggregateVerify:
    def test_aggregate_of_threshold_shares_verifies(self, scheme):
        shares = [scheme.sign_share(i, "payload") for i in range(1, 6)]
        signature = scheme.aggregate(shares)
        assert scheme.verify(signature, "payload")

    def test_any_subset_of_threshold_size_gives_same_signature(self, scheme):
        shares_a = [scheme.sign_share(i, "msg") for i in (1, 2, 3, 4, 5)]
        shares_b = [scheme.sign_share(i, "msg") for i in (2, 3, 5, 6, 7)]
        assert scheme.aggregate(shares_a).value == scheme.aggregate(shares_b).value

    def test_verify_rejects_wrong_payload(self, scheme):
        shares = [scheme.sign_share(i, "payload") for i in range(1, 6)]
        signature = scheme.aggregate(shares)
        assert not scheme.verify(signature, "other payload")

    def test_share_verification(self, scheme):
        share = scheme.sign_share(3, "payload")
        assert scheme.verify_share(share, "payload")
        assert not scheme.verify_share(share, "other")

    def test_corrupt_share_detected_at_aggregation(self, scheme):
        shares = [scheme.sign_share(i, "payload") for i in range(1, 5)]
        corrupt = SignatureShare(index=5,
                                 payload_digest=shares[0].payload_digest,
                                 value=12345)
        with pytest.raises(ThresholdError):
            scheme.aggregate(shares + [corrupt])

    def test_too_few_shares_rejected(self, scheme):
        shares = [scheme.sign_share(i, "payload") for i in range(1, 5)]
        with pytest.raises(ThresholdError):
            scheme.aggregate(shares)

    def test_duplicate_shares_do_not_count_twice(self, scheme):
        shares = [scheme.sign_share(1, "payload")] * 5
        with pytest.raises(ThresholdError):
            scheme.aggregate(shares)

    def test_mixed_payload_shares_rejected(self, scheme):
        shares = [scheme.sign_share(i, "payload") for i in range(1, 5)]
        shares.append(scheme.sign_share(5, "other"))
        with pytest.raises(ThresholdError):
            scheme.aggregate(shares)

    def test_empty_aggregation_rejected(self, scheme):
        with pytest.raises(ThresholdError):
            scheme.aggregate([])

    def test_forgery_without_quorum_never_verifies(self, scheme):
        forged = scheme.forge_without_quorum([1, 2, 3], "payload")
        assert forged is not None
        assert not scheme.verify(forged, "payload")


class TestAuthenticatorIntegration:
    def test_replicas_can_aggregate_through_authenticators(self):
        auths = make_authenticators([f"r{i}" for i in range(4)], ["c0"],
                                    seed=b"auth-threshold")
        shares = [auths[f"r{i}"].threshold_share("value") for i in range(3)]
        signature = auths["r0"].threshold_aggregate(shares)
        assert auths["r3"].threshold_verify(signature, "value")
        assert auths["c0"].threshold_verify(signature, "value")

    def test_clients_cannot_produce_shares(self):
        auths = make_authenticators(["r0", "r1", "r2", "r3"], ["c0"],
                                    seed=b"auth-threshold-2")
        with pytest.raises(ValueError):
            auths["c0"].threshold_share("value")


@settings(max_examples=30, deadline=None)
@given(
    num_shares=st.integers(min_value=2, max_value=10),
    payload=st.text(min_size=0, max_size=40),
    data=st.data(),
)
def test_threshold_property_any_quorum_aggregates(num_shares, payload, data):
    """Property: any subset of >= threshold distinct shares yields a signature
    that verifies, regardless of which replicas contributed."""
    threshold = data.draw(st.integers(min_value=1, max_value=num_shares))
    scheme = ThresholdScheme.setup(num_shares, threshold, seed=b"prop")
    indices = data.draw(
        st.lists(st.integers(min_value=1, max_value=num_shares),
                 min_size=threshold, max_size=num_shares, unique=True)
    )
    shares = [scheme.sign_share(i, payload) for i in indices]
    signature = scheme.aggregate(shares)
    assert scheme.verify(signature, payload)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_threshold_property_below_quorum_fails(data):
    """Property: fewer than `threshold` distinct shares can never produce a
    verifying signature (either aggregation refuses or verification fails)."""
    num_shares = data.draw(st.integers(min_value=3, max_value=8))
    threshold = data.draw(st.integers(min_value=2, max_value=num_shares))
    scheme = ThresholdScheme.setup(num_shares, threshold, seed=b"prop2")
    subset_size = data.draw(st.integers(min_value=1, max_value=threshold - 1))
    indices = data.draw(
        st.lists(st.integers(min_value=1, max_value=num_shares),
                 min_size=subset_size, max_size=subset_size, unique=True)
    )
    shares = [scheme.sign_share(i, "m") for i in indices]
    with pytest.raises(ThresholdError):
        scheme.aggregate(shares)
    forged = scheme.forge_without_quorum(indices, "m")
    if forged is not None and subset_size < threshold:
        assert not scheme.verify(forged, "m")
