"""Tests for the Zipfian generator, the YCSB workload and request batches."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.authenticator import make_authenticators
from repro.workload.transactions import (
    OpType,
    RequestBatch,
    Transaction,
    make_no_op_batch,
    make_synthetic_batch,
)
from repro.workload.ycsb import YcsbConfig, YcsbWorkload
from repro.workload.zipfian import ZipfianGenerator


class TestZipfian:
    def test_samples_stay_in_range(self):
        generator = ZipfianGenerator(num_items=100, theta=0.9, seed=1)
        samples = generator.sample_many(1000)
        assert all(0 <= s < 100 for s in samples)

    def test_skew_makes_low_ranks_popular(self):
        generator = ZipfianGenerator(num_items=10_000, theta=0.9, seed=2)
        samples = generator.sample_many(5000)
        top_100 = sum(1 for s in samples if s < 100)
        # With theta=0.9 well over a third of accesses hit the top 1% of keys.
        assert top_100 > len(samples) * 0.3

    def test_theta_zero_is_roughly_uniform(self):
        generator = ZipfianGenerator(num_items=100, theta=0.0, seed=3)
        samples = generator.sample_many(5000)
        top_10 = sum(1 for s in samples if s < 10)
        assert 0.05 * len(samples) < top_10 < 0.2 * len(samples)

    def test_deterministic_for_same_seed(self):
        a = ZipfianGenerator(50, 0.9, seed=7).sample_many(100)
        b = ZipfianGenerator(50, 0.9, seed=7).sample_many(100)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)


class TestYcsbWorkload:
    def test_initial_table_size_matches_config(self):
        workload = YcsbWorkload(YcsbConfig(num_records=500))
        assert len(workload.initial_table()) == 500

    def test_write_fraction_respected(self):
        workload = YcsbWorkload(YcsbConfig(num_records=1000, write_fraction=0.9,
                                           seed=11))
        operations = [workload.next_transaction().operations[0] for _ in range(500)]
        writes = sum(1 for op in operations if op.op_type is OpType.WRITE)
        assert 0.8 < writes / len(operations) < 1.0

    def test_read_only_workload(self):
        workload = YcsbWorkload(YcsbConfig(num_records=100, write_fraction=0.0))
        operations = [workload.next_transaction().operations[0] for _ in range(100)]
        assert all(op.op_type is OpType.READ for op in operations)

    def test_transaction_ids_are_unique(self):
        workload = YcsbWorkload(YcsbConfig.small())
        ids = {workload.next_transaction().txn_id for _ in range(200)}
        assert len(ids) == 200

    def test_batch_has_requested_size(self):
        workload = YcsbWorkload(YcsbConfig.small())
        batch = workload.next_batch(25)
        assert len(batch) == 25

    def test_keys_reference_initial_table(self):
        config = YcsbConfig(num_records=50, seed=5)
        workload = YcsbWorkload(config)
        table = workload.initial_table()
        for _ in range(100):
            txn = workload.next_transaction()
            for op in txn.operations:
                assert op.key in table

    def test_signed_transactions_verify(self):
        auths = make_authenticators(["replica:0", "replica:1", "replica:2",
                                     "replica:3"], ["client:0"], seed=b"ycsb")
        workload = YcsbWorkload(YcsbConfig.small(), client_id="client:0",
                                authenticator=auths["client:0"])
        txn = workload.next_transaction()
        assert txn.signature is not None
        assert auths["replica:0"].verify(txn.signature, txn.digest())


class TestBatches:
    def test_batch_digest_depends_on_contents(self):
        t1 = Transaction(txn_id="a", client_id="c")
        t2 = Transaction(txn_id="b", client_id="c")
        batch_a = RequestBatch(batch_id="x", transactions=(t1,))
        batch_b = RequestBatch(batch_id="x", transactions=(t2,))
        assert batch_a.digest() != batch_b.digest()

    def test_client_ids_deduplicated_in_order(self):
        transactions = (
            Transaction(txn_id="1", client_id="alice"),
            Transaction(txn_id="2", client_id="bob"),
            Transaction(txn_id="3", client_id="alice"),
        )
        batch = RequestBatch(batch_id="x", transactions=transactions)
        assert batch.client_ids == ("alice", "bob")

    def test_no_op_batch_has_empty_operations(self):
        batch = make_no_op_batch("b", "client:0", size=10)
        assert len(batch) == 10
        assert all(not txn.operations for txn in batch.transactions)
        assert batch.reply_to == "client:0"

    def test_synthetic_batch_reports_logical_size(self):
        batch = make_synthetic_batch("b", "client:0", size=100)
        assert len(batch) == 100
        assert batch.transactions == ()

    def test_synthetic_batches_with_same_id_share_digest(self):
        a = make_synthetic_batch("b", "client:0", size=100)
        b = make_synthetic_batch("b", "client:0", size=100)
        assert a.digest() == b.digest()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=10_000))
def test_zipfian_sample_range_property(num_items, seed):
    """Property: every sample is a valid rank for any table size and seed."""
    generator = ZipfianGenerator(num_items=num_items, theta=0.9, seed=seed)
    assert all(0 <= generator.sample() < num_items for _ in range(50))
