"""Tests for MACs, digital signatures, key generation and the cost model."""

import pytest

from repro.crypto.cost import CryptoCostModel, CryptoOp
from repro.crypto.keys import generate_system_keys
from repro.crypto.mac import MacAuthenticator
from repro.crypto.signatures import (
    InvalidSignature,
    Signature,
    SignatureScheme,
    build_registry,
)


@pytest.fixture(scope="module")
def keystores():
    return generate_system_keys(
        ["replica:0", "replica:1", "replica:2", "replica:3"],
        ["client:0"],
        seed=b"primitive-tests",
    )


class TestKeyGeneration:
    def test_every_principal_gets_a_store(self, keystores):
        assert set(keystores) == {
            "replica:0", "replica:1", "replica:2", "replica:3", "client:0",
        }

    def test_pairwise_secrets_are_symmetric(self, keystores):
        a = keystores["replica:0"].mac_secret_for("replica:1")
        b = keystores["replica:1"].mac_secret_for("replica:0")
        assert a == b

    def test_pairwise_secrets_differ_between_pairs(self, keystores):
        ab = keystores["replica:0"].mac_secret_for("replica:1")
        ac = keystores["replica:0"].mac_secret_for("replica:2")
        assert ab != ac

    def test_replicas_get_threshold_shares_clients_do_not(self, keystores):
        assert keystores["replica:0"].threshold_index == 1
        assert keystores["replica:3"].threshold_index == 4
        assert keystores["client:0"].threshold_index is None

    def test_deterministic_given_seed(self):
        a = generate_system_keys(["r0", "r1", "r2", "r3"], seed=b"same")
        b = generate_system_keys(["r0", "r1", "r2", "r3"], seed=b"same")
        assert a["r0"].signing_secret == b["r0"].signing_secret

    def test_different_seeds_differ(self):
        a = generate_system_keys(["r0", "r1", "r2", "r3"], seed=b"one")
        b = generate_system_keys(["r0", "r1", "r2", "r3"], seed=b"two")
        assert a["r0"].signing_secret != b["r0"].signing_secret

    def test_requires_at_least_one_replica(self):
        with pytest.raises(ValueError):
            generate_system_keys([])

    def test_default_threshold_is_nf(self, keystores):
        # n = 4, f = 1, so nf = 3 shares are needed.
        assert keystores["replica:0"].threshold.threshold == 3


class TestMacs:
    def test_sign_verify_roundtrip(self, keystores):
        signer = MacAuthenticator(keystores["replica:0"])
        verifier = MacAuthenticator(keystores["replica:1"])
        tag = signer.sign("replica:1", "message", 42)
        assert verifier.verify(tag, "message", 42)

    def test_wrong_message_fails(self, keystores):
        signer = MacAuthenticator(keystores["replica:0"])
        verifier = MacAuthenticator(keystores["replica:1"])
        tag = signer.sign("replica:1", "message")
        assert not verifier.verify(tag, "tampered")

    def test_wrong_receiver_fails(self, keystores):
        signer = MacAuthenticator(keystores["replica:0"])
        other = MacAuthenticator(keystores["replica:2"])
        tag = signer.sign("replica:1", "message")
        assert not other.verify(tag, "message")

    def test_unknown_sender_fails(self, keystores):
        verifier = MacAuthenticator(keystores["replica:1"])
        forged = MacAuthenticator(keystores["replica:0"]).sign("replica:1", "m")
        forged = type(forged)(sender="nobody", receiver="replica:1", tag=forged.tag)
        assert not verifier.verify(forged, "m")


class TestSignatures:
    @pytest.fixture(scope="class")
    def schemes(self, keystores):
        registry = build_registry(keystores)
        return {owner: SignatureScheme(store, registry)
                for owner, store in keystores.items()}

    def test_sign_verify_roundtrip(self, schemes):
        signature = schemes["client:0"].sign("transaction", 7)
        assert schemes["replica:0"].verify(signature, "transaction", 7)

    def test_tampered_payload_fails(self, schemes):
        signature = schemes["client:0"].sign("transaction", 7)
        assert not schemes["replica:0"].verify(signature, "transaction", 8)

    def test_impersonation_fails(self, schemes):
        signature = schemes["replica:1"].sign("payload")
        forged = Signature(signer="replica:0",
                           payload_digest=signature.payload_digest,
                           tag=signature.tag)
        assert not schemes["replica:2"].verify(forged, "payload")

    def test_unknown_signer_fails(self, schemes):
        signature = schemes["client:0"].sign("payload")
        forged = Signature(signer="stranger",
                           payload_digest=signature.payload_digest,
                           tag=signature.tag)
        assert not schemes["replica:0"].verify(forged, "payload")

    def test_require_valid_raises(self, schemes):
        signature = schemes["client:0"].sign("payload")
        with pytest.raises(InvalidSignature):
            schemes["replica:0"].require_valid(signature, "other payload")


class TestCostModel:
    def test_default_costs_positive(self):
        model = CryptoCostModel()
        for op in CryptoOp:
            assert model.cost(op) >= 0

    def test_count_multiplies(self):
        model = CryptoCostModel()
        assert model.cost(CryptoOp.MAC_SIGN, 10) == pytest.approx(
            10 * model.cost(CryptoOp.MAC_SIGN))

    def test_none_model_is_free(self):
        model = CryptoCostModel.none()
        assert model.cost(CryptoOp.THRESHOLD_AGGREGATE, 100) == 0.0

    def test_digital_signature_model_prices_macs_as_signatures(self):
        model = CryptoCostModel.digital_signatures()
        assert model.cost(CryptoOp.MAC_SIGN) == model.cost(CryptoOp.SIGN)
        assert model.cost(CryptoOp.MAC_VERIFY) == model.cost(CryptoOp.VERIFY)

    def test_cmac_model_keeps_macs_cheap(self):
        model = CryptoCostModel.cmac()
        assert model.cost(CryptoOp.MAC_SIGN) < model.cost(CryptoOp.SIGN)

    def test_scaled_returns_new_model(self):
        model = CryptoCostModel()
        doubled = model.scaled(2.0)
        assert doubled.cost(CryptoOp.HASH) == pytest.approx(2 * model.cost(CryptoOp.HASH))
        assert model.scale == 1.0

    def test_figure8_ordering_none_cheaper_than_cmac_cheaper_than_ed(self):
        """The per-batch crypto bill must reproduce Figure 8's ordering."""
        def batch_cost(model):
            return (model.cost(CryptoOp.MAC_SIGN, 10)
                    + model.cost(CryptoOp.MAC_VERIFY, 10)
                    + model.cost(CryptoOp.VERIFY))

        none = batch_cost(CryptoCostModel.none())
        cmac = batch_cost(CryptoCostModel.cmac())
        ed = batch_cost(CryptoCostModel.digital_signatures())
        assert none < cmac < ed
