"""Tests for the shared protocol framework: config, actions, batching, checkpoints."""

import pytest

from repro.protocols.base import (
    BASE_MESSAGE_SIZE,
    Broadcast,
    CancelTimer,
    Message,
    NodeConfig,
    Send,
    SetTimer,
    StepOutput,
    quorum_2f_plus_1,
    quorum_nf,
)
from repro.protocols.batching import Batcher
from repro.protocols.checkpoint import CheckpointTracker
from repro.workload.transactions import Transaction


def make_config(n, **kwargs):
    return NodeConfig(replica_ids=[f"replica:{i}" for i in range(n)], **kwargs)


class TestNodeConfig:
    @pytest.mark.parametrize("n,f,nf", [(4, 1, 3), (7, 2, 5), (16, 5, 11),
                                        (31, 10, 21), (91, 30, 61)])
    def test_fault_threshold_and_quorums(self, n, f, nf):
        config = make_config(n)
        assert config.f == f
        assert config.nf == nf
        assert quorum_nf(config) == nf
        assert quorum_2f_plus_1(config) == 2 * f + 1

    def test_primary_rotates_with_view(self):
        config = make_config(4)
        assert config.primary_of_view(0) == "replica:0"
        assert config.primary_of_view(1) == "replica:1"
        assert config.primary_of_view(5) == "replica:1"

    def test_replica_index_lookup(self):
        config = make_config(4)
        assert config.replica_index("replica:2") == 2

    def test_proposal_size_scales_with_batch(self):
        config = make_config(4, batch_size=100)
        assert config.proposal_size_bytes(100) > config.proposal_size_bytes(10)
        # Matches the paper's reported ~5400 B PROPOSE for a batch of 100.
        assert 5000 <= config.proposal_size_bytes(100) <= 6000

    def test_reply_size_matches_paper_scale(self):
        config = make_config(4)
        # Paper: RESPONSE message of 1748 B for a batch of 100.
        assert 1500 <= config.reply_size_bytes(100) <= 2000

    def test_zero_payload_shrinks_messages(self):
        config = make_config(4, zero_payload=True)
        assert config.proposal_size_bytes(100) == BASE_MESSAGE_SIZE
        assert config.reply_size_bytes(100) == BASE_MESSAGE_SIZE


class TestStepOutput:
    def test_action_filters(self):
        output = StepOutput(actions=[
            Send(to="a", message=Message()),
            Broadcast(message=Message()),
            SetTimer(name="t", delay_ms=5.0),
            CancelTimer(name="t"),
        ], cpu_ms=1.0)
        assert len(output.sends()) == 1
        assert len(output.broadcasts()) == 1
        assert len(output.timers()) == 1
        assert output.cpu_ms == 1.0


class TestBatcher:
    def _txns(self, count):
        return [Transaction(txn_id=f"t{i}", client_id="c") for i in range(count)]

    def test_emits_batch_when_full(self):
        batcher = Batcher(batch_size=3, owner_id="primary")
        assert batcher.add_transactions(self._txns(2)) == []
        batches = batcher.add_transactions(self._txns(1))
        assert len(batches) == 1
        assert len(batches[0]) == 3

    def test_emits_multiple_batches_at_once(self):
        batcher = Batcher(batch_size=2)
        batches = batcher.add_transactions(self._txns(5))
        assert [len(b) for b in batches] == [2, 2]
        assert len(batcher) == 1

    def test_flush_emits_partial_batch(self):
        batcher = Batcher(batch_size=10)
        batcher.add_transactions(self._txns(4))
        partial = batcher.flush()
        assert len(partial) == 4
        assert batcher.flush() is None

    def test_reply_to_is_recorded(self):
        batcher = Batcher(batch_size=2)
        batches = batcher.add_transactions(self._txns(2), reply_to="client:9")
        assert batches[0].reply_to == "client:9"

    def test_batch_ids_are_unique(self):
        batcher = Batcher(batch_size=1)
        batches = batcher.add_transactions(self._txns(3))
        assert len({b.batch_id for b in batches}) == 3

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            Batcher(batch_size=0)


class TestCheckpointTracker:
    def test_becomes_stable_at_quorum(self):
        tracker = CheckpointTracker(quorum=3)
        assert tracker.record_vote(9, b"d", "r0") is None
        assert tracker.record_vote(9, b"d", "r1") is None
        assert tracker.record_vote(9, b"d", "r2") == 9
        assert tracker.stable_sequence == 9

    def test_duplicate_votes_do_not_count(self):
        tracker = CheckpointTracker(quorum=3)
        tracker.record_vote(9, b"d", "r0")
        tracker.record_vote(9, b"d", "r0")
        assert tracker.record_vote(9, b"d", "r0") is None
        assert tracker.stable_sequence == -1

    def test_mismatched_digests_do_not_combine(self):
        tracker = CheckpointTracker(quorum=2)
        tracker.record_vote(9, b"a", "r0")
        assert tracker.record_vote(9, b"b", "r1") is None

    def test_old_checkpoints_ignored_after_stability(self):
        tracker = CheckpointTracker(quorum=2)
        tracker.record_vote(19, b"d", "r0")
        tracker.record_vote(19, b"d", "r1")
        assert tracker.record_vote(9, b"d", "r0") is None
        assert tracker.stable_sequence == 19

    def test_stability_advances_monotonically(self):
        tracker = CheckpointTracker(quorum=2)
        tracker.record_vote(9, b"d", "r0")
        tracker.record_vote(9, b"d", "r1")
        tracker.record_vote(19, b"d", "r0")
        assert tracker.record_vote(19, b"d", "r1") == 19
        assert tracker.stable_sequence == 19
