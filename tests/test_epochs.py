"""Consensus-committed epoch reconfiguration, end to end.

Three layers of coverage:

* **Rules** — the admissibility table (:func:`reconfig_record_valid`),
  the activation-boundary arithmetic and the auditor-side epoch-log
  re-validation, as pure unit checks.
* **Runs** — every new fault-matrix row (epoch-grow, epoch-shrink,
  epoch-under-vc, colluding-equivocate, colluding-reconfig-abuse) across
  the full protocol column, re-verified at seeds 3/7/42/99, plus the
  n=7 -> 10 grow and n=7 -> 4 two-step shrink deployments; joiners must
  end up voting members of the final epoch and evicted replicas must
  self-halt at their activation boundary.
* **Revert demos** — reverting the execution-time admissibility check or
  the client pools' epoch-aware completion quorum must be caught by the
  auditor (invalid epoch log / under-quorum completion respectively),
  while the unreverted control runs stay SAFE.
"""

import pytest

import repro.protocols.replica_base as replica_base
from repro.fabric.audit import SafetyAuditor
from repro.fabric.cluster import (
    Cluster,
    ClusterConfig,
    ReconfigPlan,
    ReconfigStep,
    replica_id,
)
from repro.fabric.scenarios import (
    MATRIX_PROTOCOLS,
    ScenarioParams,
    run_scenario,
)
from repro.net.byzantine import ByzantineSpec
from repro.protocols.epoch import (
    MIN_MEMBERSHIP,
    EpochEntry,
    activation_boundary,
    apply_reconfig,
    genesis_entry,
    make_reconfig_record,
    reconfig_record_valid,
    validate_epoch_log,
)
from repro.workload import clients

#: The fault-matrix rows introduced by the reconfiguration tier.
NEW_ROWS = (
    "epoch-grow",
    "epoch-shrink",
    "epoch-under-vc",
    "colluding-equivocate",
    "colluding-reconfig-abuse",
)

MEMBERS_7 = tuple(replica_id(i) for i in range(7))


# ------------------------------------------------------------------- rules
class TestActivationBoundary:
    def test_boundary_is_the_next_checkpoint_sequence(self):
        # Boundaries with interval 5 sit at 4, 9, 14, ...
        assert activation_boundary(0, 5) == 4
        assert activation_boundary(3, 5) == 4
        assert activation_boundary(5, 5) == 9
        assert activation_boundary(8, 5) == 9

    def test_record_committed_at_a_boundary_activates_there(self):
        assert activation_boundary(4, 5) == 4
        assert activation_boundary(9, 5) == 9

    def test_degenerate_interval_activates_immediately(self):
        assert activation_boundary(7, 0) == 7


class TestAdmissibility:
    def _check(self, record, epoch=0, membership=MEMBERS_7):
        return reconfig_record_valid(record, epoch, membership)

    def test_legal_grow_is_admissible(self):
        ok, reason = self._check(
            make_reconfig_record(1, add=(replica_id(7), replica_id(8))))
        assert ok, reason

    def test_epoch_must_chain_onto_the_latest(self):
        ok, reason = self._check(make_reconfig_record(2, add=(replica_id(7),)))
        assert not ok and "chain" in reason

    def test_duplicate_ids_are_refused(self):
        ok, reason = self._check(
            make_reconfig_record(1, add=(replica_id(7), replica_id(7))))
        assert not ok and "duplicate" in reason

    def test_add_remove_overlap_is_refused(self):
        ok, reason = self._check(make_reconfig_record(
            1, add=(replica_id(7),), remove=(replica_id(7),)))
        assert not ok and "overlap" in reason

    def test_readding_a_member_is_refused(self):
        ok, reason = self._check(make_reconfig_record(1, add=(replica_id(0),)))
        assert not ok and "already a member" in reason

    def test_removing_a_stranger_is_refused(self):
        ok, reason = self._check(
            make_reconfig_record(1, remove=(replica_id(42),)))
        assert not ok and "not a member" in reason

    def test_shrinking_below_minimum_is_refused(self):
        record = make_reconfig_record(
            1, remove=tuple(replica_id(i) for i in range(1, 5)))
        ok, reason = self._check(record)
        assert not ok and str(MIN_MEMBERSHIP) in reason

    def test_quorum_continuity_is_enforced(self):
        # Removing f+1 = 3 of 7 leaves 4 survivors < 2f+1 = 5: the exact
        # record the colluding-reconfig-abuse behaviour fabricates.
        record = make_reconfig_record(
            1, remove=tuple(replica_id(i) for i in range(3)))
        ok, reason = self._check(record)
        assert not ok and "quorum continuity" in reason

    def test_seven_to_four_needs_two_steps(self):
        # 7 -> 4 in one record breaks continuity (4 survivors < 5) ...
        one_shot = make_reconfig_record(
            1, remove=tuple(replica_id(i) for i in range(4, 7)))
        ok, _ = self._check(one_shot)
        assert not ok
        # ... but chaining 7 -> 5 -> 4 keeps every hand-off certifiable.
        first = make_reconfig_record(
            1, remove=(replica_id(5), replica_id(6)))
        ok, reason = self._check(first)
        assert ok, reason
        survivors = apply_reconfig(MEMBERS_7, (), first.remove)
        second = make_reconfig_record(2, remove=(replica_id(4),))
        ok, reason = self._check(second, epoch=1, membership=survivors)
        assert ok, reason


class TestEpochLogValidation:
    def _log(self):
        genesis = genesis_entry(MEMBERS_7)
        grown = EpochEntry(
            epoch=1, activation_sequence=4,
            members=apply_reconfig(MEMBERS_7, (replica_id(7),), ()),
            added=(replica_id(7),), committed_at=2)
        return [genesis, grown]

    def test_valid_log_has_no_problems(self):
        assert validate_epoch_log(self._log()) == []

    def test_empty_log_is_invalid(self):
        assert validate_epoch_log([]) == ["empty epoch log"]

    def test_activation_must_follow_commit(self):
        log = self._log()
        log[1] = EpochEntry(
            epoch=1, activation_sequence=1, members=log[1].members,
            added=log[1].added, committed_at=2)
        assert any("before" in p for p in validate_epoch_log(log))

    def test_activations_must_increase(self):
        log = self._log()
        log.append(EpochEntry(
            epoch=2, activation_sequence=4,
            members=apply_reconfig(log[1].members, (replica_id(8),), ()),
            added=(replica_id(8),), committed_at=4))
        assert any("must increase" in p for p in validate_epoch_log(log))

    def test_membership_must_match_the_delta(self):
        log = self._log()
        log[1] = EpochEntry(
            epoch=1, activation_sequence=4, members=MEMBERS_7,
            added=(replica_id(7),), committed_at=2)
        assert any("delta" in p for p in validate_epoch_log(log))


# -------------------------------------------------------------------- runs
@pytest.mark.parametrize("protocol", MATRIX_PROTOCOLS)
@pytest.mark.parametrize("scenario", NEW_ROWS)
def test_new_matrix_rows_are_live_and_safe(protocol, scenario):
    outcome = run_scenario(protocol, scenario)
    assert outcome.live, (
        f"{protocol} × {scenario}: stalled at "
        f"{outcome.completed_batches}/{outcome.expected_batches}")
    assert outcome.safe, outcome.audit.summary()
    assert outcome.as_expected


@pytest.mark.parametrize("seed", (3, 7, 42, 99))
@pytest.mark.parametrize("protocol", MATRIX_PROTOCOLS)
@pytest.mark.parametrize("scenario", NEW_ROWS)
def test_new_matrix_rows_survive_a_seed_sweep(scenario, protocol, seed):
    outcome = run_scenario(protocol, scenario, ScenarioParams(seed=seed))
    assert outcome.live and outcome.safe, (
        f"{protocol} × {scenario} @ seed {seed}: live={outcome.live} "
        f"{outcome.audit.summary()}")


def run_plan(protocol, num_replicas, plan, total_batches=30, seed=11,
             byzantine=None, extra_byzantine=()):
    config = ClusterConfig(
        protocol=protocol, num_replicas=num_replicas, batch_size=10,
        client_outstanding=4, total_batches=total_batches,
        request_timeout_ms=100.0, checkpoint_interval=5,
        byzantine=byzantine, extra_byzantine=tuple(extra_byzantine),
        reconfig=plan, seed=seed)
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=60_000)
    return cluster, auditor.report()


GROW_7_TO_10 = ReconfigPlan(steps=(
    ReconfigStep(at_ms=2.0, add=(7, 8, 9)),))
SHRINK_7_TO_4 = ReconfigPlan(steps=(
    ReconfigStep(at_ms=2.0, remove=(5, 6)),
    ReconfigStep(at_ms=8.0, remove=(4,)),))


@pytest.mark.parametrize("protocol", ["poe-mac", "pbft", "hotstuff"])
def test_grow_seven_to_ten(protocol):
    cluster, report = run_plan(protocol, 7, GROW_7_TO_10)
    assert report.ok, report.summary()
    assert all(pool.is_done() for pool in cluster.pools)
    actives = [r for r in cluster.replicas if not r.crashed]
    assert len(actives) == 10
    assert {r.epoch for r in actives} == {1}
    assert cluster.replicas[0].config.membership(1) == tuple(
        replica_id(i) for i in range(10))


@pytest.mark.parametrize("protocol", ["poe-mac", "pbft", "hotstuff"])
def test_shrink_seven_to_four_in_two_steps(protocol):
    cluster, report = run_plan(protocol, 7, SHRINK_7_TO_4)
    assert report.ok, report.summary()
    assert all(pool.is_done() for pool in cluster.pools)
    survivors = {r.node_id for r in cluster.replicas if not r.crashed}
    assert survivors == {replica_id(i) for i in range(4)}
    # The evicted replicas halted themselves at their removal epoch's
    # activation boundary rather than lingering as zombie voters.
    evicted = [r for r in cluster.replicas if r.node_id not in survivors]
    assert evicted and all(r.crashed for r in evicted)


def test_joiners_catch_up_and_vote():
    plan = ReconfigPlan(steps=(ReconfigStep(at_ms=2.0, add=(4, 5)),))
    cluster, report = run_plan("poe-mac", 4, plan)
    assert report.ok, report.summary()
    founders = [r for r in cluster.replicas
                if r.node_id in {replica_id(i) for i in range(4)}]
    joiners = [r for r in cluster.replicas
               if r.node_id in {replica_id(4), replica_id(5)}]
    assert len(joiners) == 2
    head = max(r.executor.last_executed_sequence for r in founders)
    for joiner in joiners:
        assert not joiner.crashed
        assert joiner.epoch == 1
        # Vouched state transfer + live participation: the joiner's
        # executed prefix reaches the founders' head, not just its
        # bootstrap snapshot.
        assert joiner.executor.last_executed_sequence == head
        assert joiner.blockchain.head.sequence == head


def test_unsafe_record_is_refused_and_journaled():
    plan = ReconfigPlan(steps=(ReconfigStep(at_ms=10.0, add=(7, 8)),))
    byz = ByzantineSpec(behavior="colluding-reconfig-abuse",
                        replica_index=0, options={"at_ms": 4.0})
    cluster, report = run_plan("poe-mac", 7, plan, total_batches=20,
                               byzantine=byz)
    assert report.ok, report.summary()
    honest = [r for r in cluster.replicas
              if r.node_id not in cluster.byzantine_ids and not r.crashed]
    assert honest
    founders = {replica_id(i) for i in range(7)}
    for replica in honest:
        if replica.node_id in founders:
            # The fabricated evict-f+1 record committed as a no-op, with
            # the violated rule on the record.  (Joiners bootstrap past
            # the refused slot via state transfer, so only replicas that
            # executed it journal the refusal.)
            assert replica.reconfig_refusals, replica.node_id
            reasons = [r for (_, _, r) in replica.reconfig_refusals]
            assert any("quorum continuity" in reason for reason in reasons)
        # The legitimate grow that followed still activated everywhere.
        assert replica.epoch == 1


# ------------------------------------------------------------ revert demos
class TestRevertDemos:
    """Layered reverts: each protection, removed, is caught by the auditor."""

    UNSAFE_SHRINK = ReconfigPlan(steps=(
        ReconfigStep(at_ms=2.0, remove=(1, 2, 3, 4)),))

    def test_control_refuses_the_unsafe_shrink(self):
        cluster, report = run_plan("poe-mac", 7, self.UNSAFE_SHRINK,
                                   total_batches=20)
        assert report.ok, report.summary()
        refusing = [r for r in cluster.replicas if r.reconfig_refusals]
        assert refusing, "the unsafe record must be refused, not ignored"
        assert all(r.epoch == 0 for r in cluster.replicas)

    def test_reverted_admission_check_fails_the_auditor(self, monkeypatch):
        """Revert layer 1: replicas that rubber-stamp admissibility
        activate an epoch below the membership floor — the auditor
        re-validates every activated log from genesis (through its own
        import-time binding, which the revert cannot reach) and flags
        it."""
        monkeypatch.setattr(replica_base, "reconfig_record_valid",
                            lambda record, epoch, members: (True, ""))
        cluster, report = run_plan("poe-mac", 7, self.UNSAFE_SHRINK,
                                   total_batches=20)
        kinds = {violation.kind for violation in report.violations}
        assert "invalid-epoch" in kinds, report.summary()
        assert any("below minimum" in violation.detail
                   for violation in report.violations)

    def test_control_grow_completes_under_the_new_quorum(self):
        cluster, report = run_plan("poe-mac", 7, GROW_7_TO_10)
        assert report.ok, report.summary()
        assert all(pool.is_done() for pool in cluster.pools)

    def test_reverted_epoch_quorum_fails_the_auditor(self, monkeypatch):
        """Revert layer 2: pools that keep counting the boot epoch's
        completion quorum accept post-grow batches on too few matching
        replies; the auditor re-counts replies delivered by completion
        time against the epoch of each completed sequence and flags
        the shortfall."""
        monkeypatch.setattr(
            clients.ClientPool, "quorum_for_sequence",
            lambda self, sequence: self.completion_quorum)
        cluster, report = run_plan("poe-mac", 7, GROW_7_TO_10)
        kinds = {violation.kind for violation in report.violations}
        assert "inform-quorum" in kinds, report.summary()
