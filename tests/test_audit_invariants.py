"""Unit rows for the pure audit invariant functions.

The post-run safety auditor and the bounded model checker now share one
set of pure functions (``check_agreement`` / ``check_ledgers`` /
``check_rollbacks`` / ``check_replica_state``).  These tests pin each
invariant against hand-built replica states — no cluster run needed —
and then a matrix regression proves the auditor's verdicts on real runs
did not move when the invariants were factored out.
"""

from types import SimpleNamespace

from repro.fabric.audit import (
    check_agreement,
    check_ledgers,
    check_replica_state,
    check_rollbacks,
    default_slot_key,
    hotstuff_slot_key,
)
from repro.fabric.scenarios import ScenarioParams, run_matrix


def block(sequence, payload, digest, view=0):
    return SimpleNamespace(sequence=sequence, view=view, payload=payload,
                           batch_digest=digest)


def replica(node_id, blocks, verify=True, last_executed=None,
            rollback_log=()):
    if last_executed is None:
        last_executed = blocks[-1].sequence if blocks else 0
    chain = SimpleNamespace(
        blocks=lambda blocks=blocks: list(blocks),
        verify_chain=lambda verify=verify: verify,
        head=blocks[-1] if blocks else block(0, "", b"genesis"),
    )
    return SimpleNamespace(node_id=node_id, blockchain=chain,
                           last_executed_sequence=last_executed,
                           rollback_log=list(rollback_log))


class TestAgreement:
    def test_clean_prefix_is_silent(self):
        honest = [replica(f"r{i}", [block(1, "batch:a", b"da"),
                                    block(2, "batch:b", b"db")])
                  for i in range(3)]
        violations, slots = check_agreement(honest)
        assert violations == []
        assert slots == 2

    def test_divergent_slot_is_flagged(self):
        honest = [replica("r0", [block(1, "batch:a", b"da")]),
                  replica("r1", [block(1, "batch:x", b"dx")])]
        violations, _ = check_agreement(honest)
        assert [v.kind for v in violations] == ["divergent-prefix"]
        assert "slot 1" in violations[0].detail

    def test_duplicate_execution_on_a_single_replica(self):
        # The model checker relies on this firing for ONE replica's ledger
        # alone (the stale-slot revert demo manifests exactly this way).
        honest = [replica("r0", [block(1, "batch:a", b"da"),
                                 block(2, "batch:a", b"da")])]
        violations, _ = check_agreement(honest)
        assert [v.kind for v in violations] == ["duplicate-execution"]
        assert "batch:a" in violations[0].detail

    def test_checkpoint_sync_blocks_are_ignored(self):
        honest = [replica("r0", [block(1, "checkpoint-sync", b"da")]),
                  replica("r1", [block(1, "checkpoint-sync", b"dx")])]
        violations, slots = check_agreement(honest)
        assert violations == []
        assert slots == 0

    def test_hotstuff_slot_key_uses_rounds(self):
        # Same batch, different local sequence, same committed round: the
        # round-keyed view must treat these as ONE slot, not a duplicate.
        honest = [replica("r0", [block(3, "batch:a", b"da", view=7)]),
                  replica("r1", [block(5, "batch:a", b"da", view=7)])]
        violations, slots = check_agreement(honest, hotstuff_slot_key)
        assert violations == []
        assert slots == 1
        assert default_slot_key(honest[0].blockchain.head) == 3
        assert hotstuff_slot_key(honest[0].blockchain.head) == 7


class TestLedgers:
    def test_broken_chain_is_flagged(self):
        honest = [replica("r0", [block(1, "batch:a", b"da")], verify=False)]
        violations = check_ledgers(honest)
        assert [v.kind for v in violations] == ["broken-chain"]

    def test_head_behind_executed_prefix_is_flagged(self):
        honest = [replica("r0", [block(1, "batch:a", b"da")],
                          last_executed=2)]
        violations = check_ledgers(honest)
        assert [v.kind for v in violations] == ["ledger-state-skew"]
        assert "head 1" in violations[0].detail


class TestRollbacks:
    def test_rollback_to_checkpoint_is_fine(self):
        honest = [replica("r0", [block(1, "batch:a", b"da")],
                          rollback_log=[(5, 5), (7, 5)])]
        violations, checked = check_rollbacks(honest)
        assert violations == []
        assert checked == 2

    def test_rollback_past_checkpoint_is_flagged(self):
        honest = [replica("r0", [block(1, "batch:a", b"da")],
                          rollback_log=[(3, 5)])]
        violations, checked = check_rollbacks(honest)
        assert [v.kind for v in violations] == ["rollback-past-checkpoint"]
        assert checked == 1


class TestComposite:
    def test_check_replica_state_composes_all_three(self):
        honest = [replica("r0", [block(1, "batch:a", b"da"),
                                 block(2, "batch:a", b"da")],
                          verify=False, last_executed=3,
                          rollback_log=[(1, 4)])]
        kinds = sorted(v.kind for v in check_replica_state(honest))
        assert kinds == ["broken-chain", "duplicate-execution",
                         "ledger-state-skew", "rollback-past-checkpoint"]

    def test_clean_state_is_silent(self):
        honest = [replica(f"r{i}", [block(1, "batch:a", b"da")])
                  for i in range(4)]
        assert check_replica_state(honest) == []


class TestMatrixRegression:
    def test_auditor_verdicts_unchanged_after_refactor(self):
        """A slice of the fault matrix still lands on its documented cells.

        The invariant factor-out must be observationally neutral: clean,
        crash-recovery and equivocation cells all keep their live/safe
        verdicts (no expected deviations remain in the matrix since the
        baseline-recovery PR).
        """
        params = ScenarioParams(total_batches=10)
        outcomes = run_matrix(
            protocols=("poe-mac", "pbft"),
            scenarios=("no-fault", "primary-crash", "equivocate"),
            params=params)
        assert len(outcomes) == 6
        for outcome in outcomes:
            assert outcome.as_expected, (
                f"{outcome.protocol}:{outcome.scenario} -> {outcome.cell()}")
            assert outcome.live and outcome.safe
