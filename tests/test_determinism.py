"""Same-seed reproducibility of full cluster runs.

The simulator guarantees that events scheduled for the same instant fire
in insertion order; these tests pin that property end to end by running
identical seeded deployments twice and demanding byte-identical outcomes
(completion records, event counts, final clock and summary metrics).
Any hot-path rewrite that silently perturbs tie-breaking fails here.
"""

import pytest

from repro.bench.perf import check_determinism
from repro.fabric.fingerprint import run_fingerprint
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.net.byzantine import ByzantineSpec
from repro.net.faults import FaultSchedule


def _config(protocol: str, seed: int = 13) -> ClusterConfig:
    return ClusterConfig(
        protocol=protocol, num_replicas=4, batch_size=20,
        num_clients=2, client_outstanding=8, total_batches=25, seed=seed,
    )


def _byzantine_config(protocol: str, behavior: str, seed: int = 13) -> ClusterConfig:
    return ClusterConfig(
        protocol=protocol, num_replicas=4, batch_size=10,
        total_batches=10, request_timeout_ms=100.0, checkpoint_interval=5,
        byzantine=ByzantineSpec(behavior=behavior, replica_index=0), seed=seed,
    )


@pytest.mark.parametrize("protocol", ["poe", "poe-mac"])
def test_same_seed_runs_are_identical(protocol):
    first = run_fingerprint(_config(protocol))
    second = run_fingerprint(_config(protocol))
    records, events, now, throughput, latency = first
    assert records, "the run must actually complete batches"
    assert events > 0
    assert first == second


def test_different_seeds_diverge():
    # Sanity check that the fingerprint is sensitive at all: different
    # network jitter must move at least one completion timestamp.
    base = run_fingerprint(_config("poe", seed=13))
    other = run_fingerprint(_config("poe", seed=14))
    assert base != other


def test_check_determinism_reports_ok():
    report = check_determinism(total_batches=15)
    assert report["ok"] is True
    assert {check["protocol"] for check in report["checks"]} == {"poe", "poe-mac"}
    assert all(check["identical"] for check in report["checks"])
    assert all(check["completed_batches"] == 15 for check in report["checks"])


@pytest.mark.parametrize("protocol,num_replicas", [
    # The zero-allocation step path at both deployment sizes: n=4 (the
    # paper's MAC sweet spot) and n=32, where the n² SUPPORT/PREPARE
    # floods dominate and the driver reuses its action buffer hardest.
    ("poe-mac", 4),
    ("poe-mac", 32),
    ("pbft", 32),
])
def test_zero_allocation_step_path_is_deterministic(protocol, num_replicas):
    config = ClusterConfig(
        protocol=protocol, num_replicas=num_replicas, batch_size=10,
        total_batches=6, checkpoint_interval=5, seed=21,
    )
    first = run_fingerprint(config)
    second = run_fingerprint(ClusterConfig(
        protocol=protocol, num_replicas=num_replicas, batch_size=10,
        total_batches=6, checkpoint_interval=5, seed=21,
    ))
    assert first == second
    records, events, now, throughput, latency = first
    assert records, "the run must complete its batches"


@pytest.mark.parametrize("protocol,behavior", [
    ("poe-mac", "equivocate-spoof"),
    ("poe-ts", "equivocate"),
    ("poe-ts", "stale-certify"),
    ("pbft", "equivocate-spoof"),
    ("hotstuff", "equivocate"),
    ("poe-mac", "replay"),
    # The baseline recovery paths: these runs exercise the SBFT and
    # Zyzzyva view-change message types (VIEW-CHANGE/NEW-VIEW, and for
    # Zyzzyva the client proof of misbehaviour) end to end.
    ("sbft", "equivocate"),
    ("zyzzyva", "equivocate"),
])
def test_byzantine_scenarios_are_deterministic(protocol, behavior):
    """Byzantine runs must be byte-identical across same-seed executions:
    behaviours draw randomness only from their bound, seeded RNG."""
    first = run_fingerprint(_byzantine_config(protocol, behavior))
    second = run_fingerprint(_byzantine_config(protocol, behavior))
    assert first == second
    records, events, now, throughput, latency = first
    assert events > 0


def _scenario_config(protocol: str, scenario: str, seed: int = 11) -> ClusterConfig:
    """A cluster config mirroring one fault-matrix cell (faults + spec +
    network conditions — recipes may return two- or three-tuples)."""
    from repro.fabric.scenarios import SCENARIOS, ScenarioParams, unpack_recipe

    params = ScenarioParams(seed=seed)
    faults, byzantine, conditions = unpack_recipe(SCENARIOS[scenario](params))
    return ClusterConfig(
        protocol=protocol, num_replicas=4, batch_size=10,
        total_batches=10, request_timeout_ms=100.0, checkpoint_interval=5,
        conditions=conditions, faults=faults, byzantine=byzantine, seed=seed,
    )


@pytest.mark.parametrize("protocol,scenario", [
    # The replica-level behaviours: forged VC histories (incl. the
    # fabricated POM and the anchor-digest repair machinery), lying
    # checkpointer (state-transfer validation and parked responses), and
    # wrong execution (same-height divergence repair + resync).
    ("zyzzyva", "forge-history"),
    ("pbft", "lying-checkpoint"),
    ("poe-mac", "wrong-exec"),
])
def test_replica_level_byzantine_runs_are_deterministic(protocol, scenario):
    """Replica-level behaviours (installed into the state machine) must be
    as seed-stable as the network-boundary ones: the install hook derives
    everything from the behaviour's bound RNG and the replica's own
    deterministic state."""
    first = run_fingerprint(_scenario_config(protocol, scenario))
    second = run_fingerprint(_scenario_config(protocol, scenario))
    assert first == second
    records, events, now, throughput, latency = first
    assert events > 0


@pytest.mark.parametrize("protocol,scenario", [
    # The robustness tier: an adaptive behaviour reading live protocol
    # state (its decisions must be functions of virtual time and the
    # replica's deterministic state only), membership churn (leave +
    # rejoin through checkpoint state transfer), and a drifting geo
    # topology (piecewise-deterministic latency drift).
    ("poe-mac", "adaptive-primary"),
    ("pbft", "churn"),
    ("hotstuff", "geo-drift"),
])
def test_adaptive_churn_and_drift_runs_are_deterministic(protocol, scenario):
    """The adaptive/churn/topology scenarios must be byte-identical on
    same-seed reruns: adaptive behaviours may only consult virtual time
    and their replica's own state, and topology drift is a deterministic
    function of virtual time."""
    first = run_fingerprint(_scenario_config(protocol, scenario))
    second = run_fingerprint(_scenario_config(protocol, scenario))
    assert first == second
    records, events, now, throughput, latency = first
    assert events > 0


def _scenario_config_ex(protocol: str, scenario: str, seed: int = 11) -> ClusterConfig:
    """Like :func:`_scenario_config`, honouring the extras channel —
    reconfiguration plans, extra Byzantine specs and deployment resizes
    carried by four-tuple recipes."""
    from repro.fabric.scenarios import SCENARIOS, ScenarioParams, unpack_recipe_ex

    params = ScenarioParams(seed=seed)
    faults, byzantine, conditions, extras = unpack_recipe_ex(
        SCENARIOS[scenario](params))
    return ClusterConfig(
        protocol=protocol,
        num_replicas=int(extras.get("num_replicas", params.num_replicas)),
        batch_size=10,
        total_batches=int(extras.get("total_batches", 10)),
        request_timeout_ms=100.0, checkpoint_interval=5,
        conditions=conditions, faults=faults, byzantine=byzantine,
        extra_byzantine=tuple(extras.get("extra_byzantine", ())),
        reconfig=extras.get("reconfig"),
        seed=seed,
    )


@pytest.mark.parametrize("protocol,scenario", [
    # The reconfiguration tier: a mid-run membership grow (joiner
    # provisioning, vouched state transfer with the epoch log, boundary
    # activation) and the colluding cabal (two behaviours coordinating
    # through a shared playbook) must both be byte-identical on
    # same-seed reruns — the admin injector and the playbook introduce
    # no randomness of their own.
    ("poe-mac", "epoch-grow"),
    ("hotstuff", "epoch-grow"),
    ("poe-mac", "colluding-equivocate"),
    ("pbft", "colluding-equivocate"),
])
def test_reconfig_and_colluding_runs_are_deterministic(protocol, scenario):
    first = run_fingerprint(_scenario_config_ex(protocol, scenario))
    second = run_fingerprint(_scenario_config_ex(protocol, scenario))
    assert first == second
    records, events, now, throughput, latency = first
    assert records, "the run must complete batches across the epoch change"
    assert events > 0


def _primary_crash_config(protocol: str, seed: int = 13) -> ClusterConfig:
    return ClusterConfig(
        protocol=protocol, num_replicas=4, batch_size=10,
        total_batches=10, request_timeout_ms=100.0, checkpoint_interval=5,
        faults=FaultSchedule.primary_crash(replica_id(0), at_ms=2.0), seed=seed,
    )


@pytest.mark.parametrize("protocol", ["sbft", "zyzzyva"])
def test_baseline_view_change_runs_are_deterministic(protocol):
    """Crash-triggered baseline view changes (the flipped matrix cells)
    must also be byte-identical across same-seed runs."""
    first = run_fingerprint(_primary_crash_config(protocol))
    second = run_fingerprint(_primary_crash_config(protocol))
    assert first == second
    records, events, now, throughput, latency = first
    assert records, "the run must complete batches through the view change"


def test_byzantine_different_seeds_diverge():
    base = run_fingerprint(_byzantine_config("poe-mac", "equivocate-spoof", seed=13))
    other = run_fingerprint(_byzantine_config("poe-mac", "equivocate-spoof", seed=14))
    assert base != other


def _sharded_config(seed: int = 13, crash_coordinator: bool = False):
    from repro.fabric.sharding import ShardedClusterConfig, coordinator_id

    hub_faults = FaultSchedule()
    if crash_coordinator:
        hub_faults.add_crash(coordinator_id(), at_ms=3.0)
    return ShardedClusterConfig(
        num_shards=2, protocols="poe-mac", num_replicas=4, batch_size=10,
        total_batches=15, cross_shard_fraction=0.3,
        request_timeout_ms=100.0, hub_faults=hub_faults, seed=seed,
    )


def test_sharded_runs_are_deterministic():
    """A two-shard PoE run — per-shard consensus, the shared hub network
    and the 2PC coordinator all on one simulator — must be byte-identical
    across same-seed executions (ledger heads, 2PC journals, completions)."""
    from repro.fabric.sharding import sharded_fingerprint

    first = sharded_fingerprint(_sharded_config())
    second = sharded_fingerprint(_sharded_config())
    assert first == second


def test_sharded_different_seeds_diverge():
    from repro.fabric.sharding import sharded_fingerprint

    assert sharded_fingerprint(_sharded_config(seed=13)) != \
        sharded_fingerprint(_sharded_config(seed=14))


def test_crash_mid_2pc_is_deterministic():
    """Crashing the coordinator mid-2PC forces the client pool onto the
    probe/presumed-abort recovery path; that recovery (timer-driven, across
    two shards) must be exactly as seed-stable as the happy path."""
    from repro.fabric.sharding import sharded_fingerprint

    first = sharded_fingerprint(_sharded_config(crash_coordinator=True))
    second = sharded_fingerprint(_sharded_config(crash_coordinator=True))
    assert first == second


def test_completion_order_is_stable_across_runs():
    # The full record sequence (not just the set) must match: order is
    # where insertion-order tie-breaking shows first.
    def batch_ids(config):
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=120_000.0)
        return [record.batch_id for record in cluster.completions()]

    assert batch_ids(_config("poe-mac")) == batch_ids(_config("poe-mac"))
