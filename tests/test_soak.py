"""Bounded-horizon soaks: every bookkeeping map must plateau.

A fault-matrix cell runs tens of batches — long enough to prove a
recovery path works, far too short to notice a map that grows with run
length.  The soak harness runs thousands of batches with a shortened
client timeout so virtual time crosses several reply-retention windows
(``request_timeout_ms * REPLY_RETENTION_TIMEOUTS``), then samples every
tracked per-node map at evenly spaced completion marks.  The invariant:
once past the first retention window, sizes are bounded by the
checkpoint/retention horizon — late-run sizes must not exceed the
mid-run plateau by more than a constant.

The churn soak adds the reconfiguration angle: replicas leave and
rejoin early in the run, and the checkpoint GC must still bound state
for the rest of the horizon — a rejoiner that kept deferred messages or
dedup entries forever would show up as a grower here.
"""

import pytest

from repro.fabric.scenarios import (
    SoakReport,
    node_state_sizes,
    run_soak,
    soak_params,
)

SOAK_STEPS = 4000
#: Mid-run sample index used as the plateau baseline: by the second of
#: five completion marks every protocol is past the first retention
#: window (~800ms of virtual time at the soak timeout).
BASELINE_SAMPLE = 1
#: A tracked map may exceed its mid-run plateau by 50% plus a small
#: constant (absorbing sampling phase relative to checkpoint boundaries)
#: before it counts as growing with run length.
GROWTH_FACTOR = 1.5
GROWTH_SLACK = 64


def assert_bounded(report: SoakReport) -> None:
    assert report.live, f"{report.protocol}/{report.scenario} did not finish"
    assert report.safe, report.audit.summary()
    assert report.completed_batches == report.steps
    baseline = report.samples[BASELINE_SAMPLE]
    final = report.samples[-1]
    # The soak must actually span multiple retention windows (800ms each
    # at the soak timeout), otherwise the GC it is meant to observe never
    # had a chance to run.
    assert final.now_ms > 1600.0
    growers = []
    for name in report.tracked_names():
        plateau = baseline.max_size(name)
        late = final.max_size(name)
        if late > plateau * GROWTH_FACTOR + GROWTH_SLACK:
            growers.append((name, plateau, late))
    assert not growers, (
        f"{report.protocol}/{report.scenario}: maps growing with run "
        f"length (name, mid-run, final): {growers}")


@pytest.mark.parametrize("protocol", ["poe-mac", "pbft", "zyzzyva", "hotstuff"])
def test_long_run_state_is_bounded(protocol):
    assert_bounded(run_soak(protocol, "no-fault", steps=SOAK_STEPS))


@pytest.mark.parametrize("protocol", ["poe-mac", "pbft"])
def test_churn_soak_checkpoint_gc_bounds_state(protocol):
    assert_bounded(run_soak(protocol, "churn", steps=SOAK_STEPS))


@pytest.mark.parametrize("protocol", ["poe-mac", "pbft"])
def test_reconfig_cycle_soak_epoch_state_plateaus(protocol):
    # Two full grow/shrink cycles early in the run, then thousands of
    # batches of steady state: the epoch log must hold exactly one entry
    # per activated reconfiguration (four) and every per-epoch map must
    # plateau with the rest of the bookkeeping — an epoch registry that
    # scaled with run length would be a leak in every long-lived
    # reconfigurable deployment.
    report = run_soak(protocol, "epoch-cycle", steps=SOAK_STEPS)
    assert_bounded(report)
    assert report.epochs == 4, (
        f"expected both grow/shrink cycles to activate, reached "
        f"epoch {report.epochs}")
    final = report.samples[-1]
    # Genesis plus one entry per activated reconfiguration, no more.
    assert final.max_size("epoch_log") == report.epochs + 1
    assert final.max_size("_pending_epochs") == 0


def test_soak_report_tracks_known_maps():
    report = run_soak("poe-mac", "no-fault", steps=200)
    assert report.samples, "the soak must sample at least once"
    names = report.tracked_names()
    # The shared bookkeeping maps every protocol carries must be visible
    # to the tracker — a rename that silently drops one from tracking
    # would turn the soak into a rubber stamp.
    for expected in ("_replied", "_seen_batch_ids", "_batch_sequence",
                     "_deferred_messages"):
        assert expected in names


def test_node_state_sizes_reports_only_present_maps():
    class Node:
        _replied = {"a": 1, "b": 2}
        _seen_batch_ids = {"a"}

    sizes = node_state_sizes(Node())
    assert sizes == {"_replied": 2, "_seen_batch_ids": 1}


def test_soak_params_span_several_retention_windows():
    params = soak_params(steps=SOAK_STEPS)
    # 25ms timeouts put the reply-retention window at 800ms of virtual
    # time; the deadline must leave room for several of them.
    assert params.request_timeout_ms == 25.0
    assert params.max_ms >= 100 * params.request_timeout_ms
