"""Parallel sharded driver: fingerprint equality and failure behaviour.

The parallel driver forks one worker per shard and exchanges boundary
events at conservative window barriers; the sequential ``ShardedCluster``
advances the *same* runtimes through the *same* window loop in-process.
These tests pin the acceptance criterion — the parallel fingerprint is
byte-identical to the sequential one for the same config — across the
canonical cross-shard scenarios and seeds, and that a crashing worker
surfaces a clean, shard-naming error instead of hanging the barrier.
"""

import os

import pytest

from repro.bench.perf import parse_sharded_label
from repro.fabric.audit import ShardedSafetyAuditor
from repro.fabric.parallel import WorkerCrash, run_parallel
from repro.fabric.scenarios import ScenarioParams, run_scenario
from repro.fabric.sharding import (
    ShardRuntime,
    ShardedClusterConfig,
    coordinator_id,
    sharded_fingerprint,
)
from repro.net.faults import FaultSchedule

SEEDS = (3, 7, 42)


def _config(scenario: str, seed: int, num_shards: int = 2) -> ShardedClusterConfig:
    """The config shapes behind the canonical cross-shard scenarios,
    at test-sized batch budgets."""
    hub_faults = None
    coordinator_behavior = None
    if scenario == "xshard-crash-2pc":
        hub_faults = FaultSchedule().add_crash(coordinator_id(), at_ms=3.0)
    elif scenario == "xshard-coordinator-equivocate":
        coordinator_behavior = "equivocate-coordinator"
    else:
        assert scenario == "xshard-no-fault"
    return ShardedClusterConfig(
        num_shards=num_shards, protocols="poe-mac", num_replicas=4,
        batch_size=10, total_batches=12, cross_shard_fraction=0.3,
        request_timeout_ms=100.0, hub_faults=hub_faults,
        coordinator_behavior=coordinator_behavior, seed=seed,
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", [
    "xshard-no-fault", "xshard-crash-2pc", "xshard-coordinator-equivocate",
])
def test_parallel_fingerprint_matches_sequential(scenario, seed):
    config = _config(scenario, seed)
    sequential = sharded_fingerprint(config)
    parallel = sharded_fingerprint(config, driver="parallel")
    assert sequential == parallel


def test_parallel_fingerprint_four_shards():
    config = _config("xshard-no-fault", seed=3, num_shards=4)
    assert (sharded_fingerprint(config)
            == sharded_fingerprint(config, driver="parallel"))


def test_unknown_driver_rejected():
    with pytest.raises(ValueError, match="driver"):
        sharded_fingerprint(_config("xshard-no-fault", 3), driver="threads")


def test_parallel_run_audits_clean_from_artifacts():
    # The workers record wire observations; the parent-side auditor built
    # over the shipped artifacts must reach the live auditor's verdict.
    run = run_parallel(_config("xshard-coordinator-equivocate", seed=7))
    report = ShardedSafetyAuditor.from_recorded(run).report()
    assert report.ok, report.summary()
    assert report.completions_checked > 0


def test_parallel_scenario_outcome_matches_sequential():
    params = ScenarioParams(total_batches=10)
    sequential = run_scenario("poe-mac", "xshard-crash-2pc", params)
    parallel = run_scenario("poe-mac", "xshard-crash-2pc", params,
                            driver="parallel")
    assert parallel.live == sequential.live
    assert parallel.safe == sequential.safe
    assert parallel.completed_batches == sequential.completed_batches
    assert parallel.view_changes == sequential.view_changes


def test_single_group_scenarios_are_sequential_only():
    with pytest.raises(ValueError, match="sequential-only"):
        run_scenario("poe", "steady-state", driver="parallel")


def test_worker_exception_surfaces_clean_error(monkeypatch):
    # Fork inherits the patched class, so every worker's first window
    # raises; the parent must fail fast with the shard named — not hang
    # waiting on a barrier that will never complete.
    def boom(self, edge_ms, inbox):
        raise RuntimeError("injected worker fault")

    monkeypatch.setattr(ShardRuntime, "window", boom)
    with pytest.raises(WorkerCrash, match=r"shard \d+ worker failed"):
        run_parallel(_config("xshard-no-fault", seed=3))


def test_worker_hard_death_surfaces_clean_error(monkeypatch):
    # A worker that dies without reporting (segfault stand-in) must
    # surface as a WorkerCrash via the closed pipe, again without hanging.
    def die(self, edge_ms, inbox):
        os._exit(17)

    monkeypatch.setattr(ShardRuntime, "window", die)
    with pytest.raises(WorkerCrash, match=r"shard \d+ worker died"):
        run_parallel(_config("xshard-no-fault", seed=3))


def test_parse_sharded_label_roundtrip():
    assert parse_sharded_label("poe-2sh-x20") == ("poe", 2, 0.2)
    assert parse_sharded_label("poe-mac-8sh-x0") == ("poe-mac", 8, 0.0)
    assert parse_sharded_label("poe-mac") is None
    assert parse_sharded_label("pbft") is None
