"""Tests for repro.crypto.hashing: canonical digests over structured values."""

from hypothesis import given, strategies as st

from repro.crypto.hashing import chain_hash, digest, digest_hex


class TestDigestBasics:
    def test_digest_is_32_bytes(self):
        assert len(digest("hello")) == 32

    def test_digest_hex_matches_digest(self):
        assert digest_hex("abc", 1) == digest("abc", 1).hex()

    def test_same_input_same_digest(self):
        assert digest("a", 1, b"x") == digest("a", 1, b"x")

    def test_different_inputs_differ(self):
        assert digest("a") != digest("b")

    def test_multiple_args_equivalent_to_unpacking(self):
        assert digest(1, 2) == digest(*(1, 2))

    def test_argument_order_matters(self):
        assert digest(1, 2) != digest(2, 1)


class TestTypeTagging:
    """The canonical encoding must not confuse values of different types."""

    def test_int_vs_string(self):
        assert digest(1) != digest("1")

    def test_bytes_vs_string(self):
        assert digest(b"abc") != digest("abc")

    def test_bool_vs_int(self):
        assert digest(True) != digest(1)

    def test_none_vs_empty_string(self):
        assert digest(None) != digest("")

    def test_nested_structures(self):
        assert digest([1, [2, 3]]) != digest([1, 2, 3])

    def test_dict_ordering_is_canonical(self):
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})

    def test_dict_vs_tuple(self):
        assert digest({"a": 1}) != digest(("a", 1))

    def test_object_with_canonical_bytes(self):
        class Thing:
            def canonical_bytes(self):
                return b"thing-bytes"

        assert digest(Thing()) == digest(Thing())


class TestChainHash:
    def test_chain_hash_depends_on_parent(self):
        parent_a = digest("parent-a")
        parent_b = digest("parent-b")
        assert chain_hash(parent_a, "payload") != chain_hash(parent_b, "payload")

    def test_chain_hash_depends_on_payload(self):
        parent = digest("parent")
        assert chain_hash(parent, "x") != chain_hash(parent, "y")


@given(st.lists(st.one_of(st.integers(), st.text(), st.binary(), st.booleans(),
                          st.none()), max_size=8))
def test_digest_deterministic_property(values):
    """Hashing the same structured value twice always gives the same digest."""
    assert digest(*values) == digest(*values)


@given(st.text(), st.text())
def test_distinct_strings_rarely_collide(a, b):
    """Distinct inputs produce distinct digests (collision resistance proxy)."""
    if a != b:
        assert digest(a) != digest(b)
