"""Tests for the shared baseline-recovery subsystem.

The flipped fault-matrix cells are each pinned by an auditor-backed
regression (SBFT and Zyzzyva recovering from a crashed and from an
equivocating primary, including the n=32 threshold-scheme SBFT view
change and the Zyzzyva proof-of-misbehaviour path), and the new pure and
replica-level pieces — speculative-history reconciliation, SBFT
view-change request validation, collector-timer cancellation on
rotation, commit-certificate anchoring — are unit-tested directly.
"""

import pytest

from repro.core.view_change import reconcile_speculative_histories
from repro.crypto.authenticator import make_authenticators
from repro.fabric.audit import SafetyAuditor
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.fabric.scenarios import ScenarioParams, run_scenario
from repro.net.byzantine import ByzantineSpec
from repro.protocols.base import NodeConfig
from repro.protocols.client_messages import ClientReplyMessage
from repro.protocols.sbft import (
    SbftCertifiedSlot,
    SbftNewView,
    SbftReplica,
    SbftViewChange,
    sbft_proposal_digest,
)
from repro.protocols.zyzzyva import (
    ZyzzyvaCommitCertificate,
    ZyzzyvaHistoryEntry,
    ZyzzyvaNewView,
    ZyzzyvaOrderRequest,
    ZyzzyvaProofOfMisbehaviour,
    ZyzzyvaReplica,
    ZyzzyvaViewChange,
    ZyzzyvaClientPool,
)
from repro.workload.transactions import make_no_op_batch

REPLICAS = [f"replica:{i}" for i in range(4)]


# --------------------------------------------------------------------------
# The flipped matrix cells, each verified by the safety auditor.
# --------------------------------------------------------------------------

class TestFlippedMatrixCells:
    @pytest.mark.parametrize("protocol,scenario", [
        ("sbft", "primary-crash"),
        ("sbft", "equivocate"),
        ("zyzzyva", "primary-crash"),
        ("zyzzyva", "equivocate"),
    ])
    def test_flipped_cell_is_live_and_safe(self, protocol, scenario):
        """The cells PR 2 documented as expected-stall/expected-unsafe now
        recover: the client budget completes, the auditor finds no
        divergent prefixes or checkpoint-crossing rollbacks, and at least
        one view change actually ran (the recovery is real, not a fluke
        of the fault not biting)."""
        outcome = run_scenario(protocol, scenario)
        assert outcome.live, (
            f"{protocol}×{scenario} stalled: "
            f"{outcome.completed_batches}/{outcome.expected_batches}")
        assert outcome.safe, outcome.audit.summary()
        assert outcome.as_expected
        assert outcome.view_changes >= 1

    def test_sbft_threshold_view_change_at_n32(self):
        """The SBFT view change at deployment scale: n=32 runs the
        threshold scheme with 2f+1 = 21 view-change votes."""
        outcome = run_scenario("sbft", "primary-crash",
                               ScenarioParams(num_replicas=32, total_batches=6))
        assert outcome.live and outcome.safe, outcome.audit.summary()
        assert outcome.view_changes >= 1

    def test_zyzzyva_proof_of_misbehaviour_path(self):
        """Under an equivocating primary the *client* detects the conflict
        and broadcasts a proof of misbehaviour; replicas accept it and the
        resulting view change converges every honest replica."""
        config = ClusterConfig(
            protocol="zyzzyva", num_replicas=4, batch_size=10,
            total_batches=10, request_timeout_ms=100.0, checkpoint_interval=5,
            byzantine=ByzantineSpec(behavior="equivocate", replica_index=0),
            seed=7,
        )
        cluster = Cluster(config)
        auditor = SafetyAuditor.attach(cluster)
        cluster.start()
        cluster.run_until_done(max_ms=60_000)
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)
        assert sum(pool.proofs_of_misbehaviour_sent
                   for pool in cluster.pools) >= 1
        honest = [replica for replica in cluster.replicas
                  if replica.node_id != replica_id(0)]
        assert any(replica.proofs_of_misbehaviour_accepted > 0
                   for replica in honest)
        assert all(replica.view >= 1 for replica in honest)
        # Convergence is literal: one executed prefix across honest replicas.
        digests = {replica.executor.state_digest() for replica in honest}
        assert len(digests) == 1


# --------------------------------------------------------------------------
# Zyzzyva history reconciliation (pure function).
# --------------------------------------------------------------------------

def _entry(sequence, label, view=0):
    batch = make_no_op_batch(label, "client:0", 2)
    return ZyzzyvaHistoryEntry(sequence=sequence, view=view, batch=batch,
                               history_digest=b"h%d" % sequence)


def _request(replica, entries, checkpoint=-1, cc=None):
    return ZyzzyvaViewChange(view=0, replica_id=replica,
                             stable_checkpoint=checkpoint,
                             commit_certificate=cc, executed=tuple(entries))


class TestReconcileSpeculativeHistories:
    def test_unanimous_histories_are_adopted_whole(self):
        entries = [_entry(seq, f"b{seq}") for seq in range(3)]
        requests = [_request(f"replica:{i}", entries) for i in range(3)]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert kmax == 2
        assert sorted(prefix) == [0, 1, 2]

    def test_minority_entries_above_anchor_are_dropped(self):
        """A speculative slot only one of 2f+1 requests reports cannot have
        completed on the fast path, so it does not survive the view change."""
        shared = [_entry(0, "b0")]
        ahead = shared + [_entry(1, "b1-only-here")]
        requests = [_request("replica:1", shared), _request("replica:2", shared),
                    _request("replica:3", ahead)]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert kmax == 0
        assert sorted(prefix) == [0]

    def test_fast_path_batch_survives_any_quorum(self):
        """A batch executed by every honest replica appears in >= f+1 of any
        2f+1 view-change requests and must be retained (the Zyzzyva
        analogue of PoE's Proposition 5)."""
        entries = [_entry(0, "b0"), _entry(1, "completed-fast-path")]
        requests = [_request("replica:1", entries), _request("replica:2", entries),
                    _request("replica:3", entries[:1])]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert kmax == 1
        assert prefix[1].batch.batch_id == "completed-fast-path"

    def test_conflicting_slots_resolve_deterministically(self):
        """When two histories conflict at a slot and neither can have
        completed, support count decides (digest order breaks exact ties)
        — identically on every replica."""
        real = [_entry(0, "real-b0")]
        forged = [_entry(0, "forged-b0")]
        requests = [_request("replica:1", real), _request("replica:2", forged),
                    _request("replica:3", forged)]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert kmax == 0
        assert prefix[0].batch.batch_id == "forged-b0"
        # The same requests in any order adopt the same entry.
        again, _ = reconcile_speculative_histories(list(reversed(requests)), f=1)
        assert again[0].batch.batch_id == "forged-b0"

    def test_commit_certificate_anchors_kmax(self):
        """A corroborated commit certificate proves durability at its
        sequence: the new view never starts below it, even when the
        certified slots lack f+1 speculative support.  Only the certified
        slot itself stays adoptable — an uncertified sub-anchor entry with
        one supporter is left to state transfer, because a bare plurality
        there could be a forged history.  (A genuine certificate always
        has f+1 carriers: the 2f+1 responders all stored it.)"""
        entries = [_entry(0, "b0"), _entry(1, "b1")]
        cc = ZyzzyvaCommitCertificate(
            batch_id="b1", view=0, sequence=1, result_digest=b"r",
            responders=("replica:0", "replica:1", "replica:2"))
        requests = [_request("replica:1", entries, cc=cc),
                    _request("replica:2", [], cc=cc),
                    _request("replica:3", [])]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert kmax == 1
        assert sorted(prefix) == [1]
        assert prefix[1].batch.batch_id == "b1"

    def test_single_carrier_certificate_does_not_anchor(self):
        """One request's certificate is an unverifiable MAC-mode claim: a
        lone forger must not raise the anchor (re-basing the new view past
        a permanent gap) or win a slot with it."""
        entries = [_entry(0, "b0"), _entry(1, "b1")]
        cc = ZyzzyvaCommitCertificate(
            batch_id="b1", view=0, sequence=1, result_digest=b"r",
            responders=("replica:0", "replica:1", "replica:2"))
        requests = [_request("replica:1", entries, cc=cc),
                    _request("replica:2", []), _request("replica:3", [])]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert kmax == -1
        assert prefix == {}
        forged_future = ZyzzyvaCommitCertificate(
            batch_id="void", view=0, sequence=10**6, result_digest=b"r",
            responders=("replica:0", "replica:1", "replica:2"))
        requests = [_request("replica:1", [], cc=forged_future),
                    _request("replica:2", []), _request("replica:3", [])]
        from repro.core.view_change import speculative_anchor
        assert speculative_anchor(requests, f=1).anchor == -1

    def test_certificate_cannot_corroborate_itself(self):
        """One request shipping the same forged certificate at request
        level *and* on its entry counts as one carrier, not two — a lone
        forger must not clear the f+1 corroboration bar alone."""
        forged_entry = _entry(1, "forged-b1")
        cc = ZyzzyvaCommitCertificate(
            batch_id="forged-b1", view=0, sequence=1, result_digest=b"r",
            responders=("replica:0", "replica:1", "replica:2"))
        doubled = ZyzzyvaHistoryEntry(
            sequence=1, view=0, batch=forged_entry.batch,
            history_digest=b"h1", commit_certificate=cc)
        requests = [_request("replica:1", [_entry(0, "b0"), doubled], cc=cc),
                    _request("replica:2", []), _request("replica:3", [])]
        from repro.core.view_change import (
            corroborated_certificates,
            speculative_anchor,
        )
        assert corroborated_certificates(requests, f=1) == {}
        assert speculative_anchor(requests, f=1).anchor == -1
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert kmax == -1 and prefix == {}

    def test_stable_checkpoint_anchors_kmax(self):
        requests = [_request("replica:1", [], checkpoint=7),
                    _request("replica:2", []), _request("replica:3", [])]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert prefix == {}
        assert kmax == 7

    def test_empty_requests_yield_genesis(self):
        requests = [_request(f"replica:{i}", []) for i in range(3)]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert prefix == {}
        assert kmax == -1

    def test_certified_entry_beats_plurality(self):
        """A slot whose commit certificate is corroborated (f+1 carriers)
        adopts the certified batch even when a conflicting uncertified
        digest has *more* supporters: the certificate proves 2f+1 replicas
        answered the certified batch, and the client may have completed
        on it."""
        certified_batch = _entry(0, "certified-b0")
        cc = ZyzzyvaCommitCertificate(
            batch_id="certified-b0", view=0, sequence=0, result_digest=b"r",
            responders=("replica:0", "replica:1", "replica:2"))
        certified = ZyzzyvaHistoryEntry(
            sequence=0, view=0, batch=certified_batch.batch,
            history_digest=b"h0", commit_certificate=cc)
        conflicting = [_entry(0, "conflicting-b0")]
        requests = [_request("replica:0", [certified]),
                    _request("replica:1", [certified]),
                    _request("replica:2", conflicting),
                    _request("replica:3", conflicting),
                    _request("replica:4", conflicting)]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert kmax == 0
        assert prefix[0].batch.batch_id == "certified-b0"
        assert prefix[0].commit_certificate is not None

    def test_forged_sub_anchor_entry_needs_certificate_or_support(self):
        """The Hellings & Rahnama corner: below the anchor a single forged
        request must not be able to hand lagging replicas fabricated
        batches — uncertified sub-anchor entries need f+1 matching
        requests, and slots without either are left to state transfer."""
        forged = [_entry(seq, f"forged-b{seq}") for seq in range(5)]
        requests = [_request("replica:1", [], checkpoint=4),
                    _request("replica:2", [], checkpoint=4),
                    _request("replica:3", forged)]
        prefix, kmax = reconcile_speculative_histories(requests, f=1)
        assert kmax == 4
        assert prefix == {}

    def test_randomized_forged_history_adversary(self):
        """Property sweep (seeded): one adversarial request fabricating
        arbitrary histories can never (a) place an uncertified entry at a
        sub-anchor slot without honest agreement, nor (b) displace an
        honest entry that f+1 honest requests support."""
        import random
        rng = random.Random(0xF06)
        for trial in range(50):
            checkpoint = rng.randrange(-1, 6)
            honest_top = checkpoint + rng.randrange(0, 4)
            honest = [_entry(seq, f"honest-{seq}")
                      for seq in range(checkpoint + 1, honest_top + 1)]
            forged_top = rng.randrange(0, 10)
            forged = [_entry(seq, f"forged-{trial}-{seq}")
                      for seq in range(forged_top + 1)]
            requests = [_request("replica:1", honest, checkpoint=checkpoint),
                        _request("replica:2", honest, checkpoint=checkpoint),
                        _request("replica:3", forged, checkpoint=-1)]
            rng.shuffle(requests)
            prefix, kmax = reconcile_speculative_histories(requests, f=1)
            for sequence, entry in prefix.items():
                if entry.batch.batch_id.startswith("forged"):
                    # A forged entry can only survive above the anchor at
                    # slots no honest entry contests (it then has the only
                    # support and rides the permissive above-anchor rule
                    # until the next uncovered slot; agreement still holds
                    # because every replica adopts the same entry).
                    assert sequence > checkpoint
                    assert all(h.sequence != sequence for h in honest)
            for entry in honest:
                if entry.sequence <= kmax:
                    assert prefix[entry.sequence].batch.batch_id == \
                        f"honest-{entry.sequence}"

    def test_anchor_is_monotonic_in_requests(self):
        """Adding requests can only raise the anchor, never lower it — and
        the adopted kmax never drops below the highest proven durable
        point (anchor monotonicity)."""
        from repro.core.view_change import speculative_anchor
        base = [_request("replica:1", [], checkpoint=3),
                _request("replica:2", [], checkpoint=1)]
        info = speculative_anchor(base, f=1)
        assert info.anchor == 3 and info.checkpoint == 3
        cc = ZyzzyvaCommitCertificate(
            batch_id="b9", view=0, sequence=9, result_digest=b"r",
            responders=("replica:0", "replica:1", "replica:2"))
        more = base + [_request("replica:3", [], checkpoint=2, cc=cc),
                       _request("replica:4", [], checkpoint=2, cc=cc)]
        grown = speculative_anchor(more, f=1)
        assert grown.anchor == 9
        assert grown.checkpoint == 3
        _, kmax = reconcile_speculative_histories(more, f=1)
        assert kmax >= grown.anchor

    def test_anchor_digest_requires_f_plus_1_agreement(self):
        """A single request claiming an arbitrary digest for the durable
        state must not have it believed: the checkpoint digest is only
        reported when f+1 requests agree on it."""
        from repro.core.view_change import speculative_anchor
        lone = [_request("replica:1", [], checkpoint=4),
                _request("replica:2", [], checkpoint=-1),
                _request("replica:3", [], checkpoint=-1)]
        lone[0].checkpoint_digest = b"claimed"
        assert speculative_anchor(lone, f=1).checkpoint_digest is None
        agreeing = [_request("replica:1", [], checkpoint=4),
                    _request("replica:2", [], checkpoint=4),
                    _request("replica:3", [], checkpoint=-1)]
        agreeing[0].checkpoint_digest = b"quorum"
        agreeing[1].checkpoint_digest = b"quorum"
        assert speculative_anchor(agreeing, f=1).checkpoint_digest == b"quorum"


# --------------------------------------------------------------------------
# Zyzzyva replica: adoption, rollback, proof of misbehaviour.
# --------------------------------------------------------------------------

def _zyzzyva_replica(seed, rid="replica:3"):
    config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                        execute_operations=True, request_timeout_ms=100.0)
    auths = make_authenticators(REPLICAS, ["client:0"], seed=seed)
    return ZyzzyvaReplica(rid, config, auths[rid])


class TestZyzzyvaViewChange:
    def test_divergent_history_is_rolled_back_to_the_adopted_prefix(self):
        """A replica that speculatively executed a different batch at an
        adopted slot (the equivocation victim) must roll back to the last
        agreement point and re-execute the adopted history."""
        replica = _zyzzyva_replica(b"zyz-adopt")
        mine = make_no_op_batch("real-b0", "client:0", 2)
        replica.deliver("replica:0", ZyzzyvaOrderRequest(
            view=0, sequence=0, batch=mine, history_digest=b"h0"), 1.0)
        assert replica.last_executed_sequence == 0
        adopted = [_entry(0, "forged-b0"), _entry(1, "forged-b1")]
        requests = tuple(_request(f"replica:{i}", adopted) for i in (1, 2, 3))
        replica.deliver("replica:1", ZyzzyvaNewView(new_view=1, requests=requests),
                        5.0)
        assert replica.view == 1
        assert replica.last_executed_sequence == 1
        assert replica.rolled_back_batches == 1
        assert replica.rollback_log == [(-1, -1)]
        assert replica.blockchain.block_at(0).payload == "forged-b0"
        assert replica.blockchain.block_at(1).payload == "forged-b1"
        # The rolled-back batch is acceptable again on retransmission.
        assert "real-b0" not in replica._seen_batch_ids

    def test_matching_history_is_kept_without_rollback(self):
        replica = _zyzzyva_replica(b"zyz-keep")
        batch = make_no_op_batch("b0", "client:0", 2)
        replica.deliver("replica:0", ZyzzyvaOrderRequest(
            view=0, sequence=0, batch=batch, history_digest=b"h0"), 1.0)
        entry = ZyzzyvaHistoryEntry(sequence=0, view=0, batch=batch,
                                    history_digest=b"h0")
        requests = tuple(_request(f"replica:{i}", [entry]) for i in (1, 2, 3))
        replica.deliver("replica:1", ZyzzyvaNewView(new_view=1, requests=requests),
                        5.0)
        assert replica.view == 1
        assert replica.rolled_back_batches == 0
        assert replica.rollback_log == []
        assert replica.blockchain.block_at(0).payload == "b0"

    def test_empty_new_view_from_byzantine_leader_is_rejected(self):
        """Regression: a NEW-VIEW without a quorum of admissible requests
        must not be adopted — an empty one would anchor reconciliation at
        -1 and roll the replica's entire speculative history back."""
        replica = _zyzzyva_replica(b"zyz-empty-nv")
        batch = make_no_op_batch("b0", "client:0", 2)
        replica.deliver("replica:0", ZyzzyvaOrderRequest(
            view=0, sequence=0, batch=batch, history_digest=b"h0"), 1.0)
        replica.deliver("replica:1", ZyzzyvaNewView(new_view=1, requests=()), 5.0)
        assert replica.view == 0
        assert replica.last_executed_sequence == 0
        assert replica.rolled_back_batches == 0
        # Rejecting the proposal treats the new leader as faulty.
        assert replica.view_change_in_progress

    def test_padded_forged_request_does_not_extend_the_prefix(self):
        """Regression: a Byzantine leader can bundle a quorum of valid
        requests plus a forged extra one; entries from the inadmissible
        request must not reach reconciliation."""
        replica = _zyzzyva_replica(b"zyz-padded")
        shared = [_entry(0, "b0")]
        forged = _request("replica:0", [_entry(5, "forged-gap-entry")],
                          checkpoint=3)  # non-consecutive: inadmissible
        requests = tuple(_request(f"replica:{i}", shared) for i in (1, 2, 3))
        replica.deliver("replica:1",
                        ZyzzyvaNewView(new_view=1, requests=requests + (forged,)),
                        5.0)
        assert replica.view == 1
        assert replica.last_executed_sequence == 0
        assert replica.blockchain.block_at(0).payload == "b0"

    def test_stuffed_new_view_with_duplicate_requests_is_rejected(self):
        """Regression: a Byzantine new primary must not reach the quorum
        (or any downstream f+1 threshold) by stuffing the NEW-VIEW with
        copies of one forged request — only one admissible request per
        claimed replica id counts."""
        replica = _zyzzyva_replica(b"zyz-stuffed")
        batch = make_no_op_batch("b0", "client:0", 2)
        replica.deliver("replica:0", ZyzzyvaOrderRequest(
            view=0, sequence=0, batch=batch, history_digest=b"h0"), 1.0)
        forged = _request("replica:1", [_entry(0, "forged-b0")])
        replica.deliver("replica:1", ZyzzyvaNewView(
            new_view=1, requests=(forged, forged, forged)), 5.0)
        assert replica.view == 0                      # proposal rejected
        assert replica.rolled_back_batches == 0
        assert replica.blockchain.block_at(0).payload == "b0"
        assert replica.view_change_in_progress        # leader treated as faulty

    def test_valid_pom_starts_a_view_change(self):
        replica = _zyzzyva_replica(b"zyz-pom")
        pom = ZyzzyvaProofOfMisbehaviour(
            view=0, client_id="client:0",
            evidence=((0, 3, "real-b3", b"d1"), (0, 3, "byz:forged", b"d2")))
        output = replica.deliver("client:0", pom, 1.0)
        assert replica.view_change_in_progress
        assert replica.proofs_of_misbehaviour_accepted == 1
        assert any(isinstance(action.message, ZyzzyvaViewChange)
                   for action in output.broadcasts())

    @pytest.mark.parametrize("evidence", [
        (),                                                   # empty
        ((0, 3, "b", b"d1"),),                                # single response
        ((0, 3, "b", b"d1"), (0, 3, "b", b"d1")),             # no conflict
        ((0, 3, "b", b"d1"), (0, 4, "b", b"d2")),             # different slots
        ((2, 3, "b", b"d1"), (2, 3, "b", b"d2")),             # wrong view
    ])
    def test_malformed_pom_is_ignored(self, evidence):
        replica = _zyzzyva_replica(b"zyz-pom-bad")
        pom = ZyzzyvaProofOfMisbehaviour(view=evidence[0][0] if evidence else 0,
                                         evidence=evidence, client_id="client:0")
        replica.deliver("client:0", pom, 1.0)
        assert not replica.view_change_in_progress
        assert replica.proofs_of_misbehaviour_accepted == 0


class TestZyzzyvaClientDetection:
    def test_conflicting_speculative_replies_produce_a_pom(self):
        """The client observes a forged ordering at its own slot (the reply
        references a batch it never sent) and emits the proof."""
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=1,
                            request_timeout_ms=50.0)
        pool = ZyzzyvaClientPool("client:0", config, total_batches=1,
                                 target_outstanding=1, timeout_ms=50.0)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        pool.deliver("replica:1", ClientReplyMessage(
            batch_id=batch_id, view=0, sequence=0, result_digest=b"real",
            replica_id="replica:1", speculative=True), 1.0)
        # The conflicting second response is itself the proof: the POM goes
        # out immediately, not on the next request timeout.
        output = pool.deliver("replica:2", ClientReplyMessage(
            batch_id="byz:forged:0", view=0, sequence=0, result_digest=b"forged",
            replica_id="replica:2", speculative=True), 2.0)
        poms = [action.message for action in output.broadcasts()
                if isinstance(action.message, ZyzzyvaProofOfMisbehaviour)]
        assert len(poms) == 1
        assert pool.proofs_of_misbehaviour_sent == 1
        first, second = poms[0].evidence
        assert first[:2] == second[:2] == (0, 0)
        assert first[2:] != second[2:]
        # One proof per view: a later timeout does not re-broadcast it.
        repeat = pool.timer_fired(f"request:{batch_id}", batch_id, 51.0)
        assert not any(isinstance(action.message, ZyzzyvaProofOfMisbehaviour)
                       for action in repeat.broadcasts())

    def test_consistent_replies_produce_no_pom(self):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=1,
                            request_timeout_ms=50.0)
        pool = ZyzzyvaClientPool("client:0", config, total_batches=1,
                                 target_outstanding=1, timeout_ms=50.0)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        for i in (1, 2):
            pool.deliver(f"replica:{i}", ClientReplyMessage(
                batch_id=batch_id, view=0, sequence=0, result_digest=b"real",
                replica_id=f"replica:{i}", speculative=True), float(i))
        output = pool.timer_fired(f"request:{batch_id}", batch_id, 51.0)
        assert not any(isinstance(action.message, ZyzzyvaProofOfMisbehaviour)
                       for action in output.broadcasts())
        assert pool.proofs_of_misbehaviour_sent == 0


# --------------------------------------------------------------------------
# SBFT: view-change request validation and collector-timer hygiene.
# --------------------------------------------------------------------------

def _sbft_replica(auths, rid="replica:0"):
    config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                        execute_operations=True, request_timeout_ms=100.0)
    return SbftReplica(rid, config, auths[rid])


def _certified_slot(auths, sequence, view=0, label=None, certificate=None):
    batch = make_no_op_batch(label or f"batch-{sequence}", "client:0", 2)
    digest_h = sbft_proposal_digest(view, sequence, batch)
    if certificate is None:
        shares = [auths[rid].threshold_share(digest_h) for rid in REPLICAS[:3]]
        certificate = auths[REPLICAS[0]].threshold_aggregate(shares)
    return SbftCertifiedSlot(sequence=sequence, view=view,
                             proposal_digest=digest_h, batch=batch,
                             certificate=certificate)


@pytest.fixture(scope="module")
def auths():
    return make_authenticators(REPLICAS, ["client:0"], seed=b"sbft-recovery")


class TestSbftViewChangeValidation:
    def test_valid_request_accepted(self, auths):
        replica = _sbft_replica(auths)
        entries = tuple(_certified_slot(auths, seq) for seq in range(3))
        request = SbftViewChange(view=0, replica_id="replica:1",
                                 stable_checkpoint=-1, executed=entries)
        assert replica.validate_view_change_request_message(request, 0)

    def test_wrong_view_rejected(self, auths):
        replica = _sbft_replica(auths)
        request = SbftViewChange(view=2, replica_id="replica:1")
        assert not replica.validate_view_change_request_message(request, 0)

    def test_non_consecutive_entries_rejected(self, auths):
        replica = _sbft_replica(auths)
        entries = (_certified_slot(auths, 0), _certified_slot(auths, 2))
        request = SbftViewChange(view=0, replica_id="replica:1",
                                 stable_checkpoint=-1, executed=entries)
        assert not replica.validate_view_change_request_message(request, 0)

    def test_forged_certificate_rejected(self, auths):
        """A commit proof from a different slot does not certify this one —
        the per-slot threshold signature is re-verified on admission."""
        replica = _sbft_replica(auths)
        other = _certified_slot(auths, 0, label="other-batch")
        forged = _certified_slot(auths, 0, certificate=other.certificate,
                                 label="victim-batch")
        request = SbftViewChange(view=0, replica_id="replica:1",
                                 stable_checkpoint=-1, executed=(forged,))
        assert not replica.validate_view_change_request_message(request, 0)

    def test_missing_certificate_rejected(self, auths):
        replica = _sbft_replica(auths)
        entry = _certified_slot(auths, 0)
        stripped = SbftCertifiedSlot(
            sequence=0, view=0, proposal_digest=entry.proposal_digest,
            batch=entry.batch, certificate=None)
        request = SbftViewChange(view=0, replica_id="replica:1",
                                 stable_checkpoint=-1, executed=(stripped,))
        assert not replica.validate_view_change_request_message(request, 0)


class TestSbftViewChangeAdoption:
    def test_stale_pending_slot_is_evicted_before_the_prefix_executes(self, auths):
        """Regression: a certified-but-unexecuted slot from the old view
        that the adopted prefix does not cover must be evicted, or
        in-order execution drains it right behind the prefix and the
        replica diverges (the PoE stale-slot hazard, SBFT edition)."""
        replica = _sbft_replica(auths, rid="replica:3")
        stale = _certified_slot(auths, 1, label="stale-view0-batch")
        # Slot 1 committed in view 0 but stuck behind the gap at 0.
        replica.commit_slot(sequence=1, view=0, batch=stale.batch,
                            proof=stale.certificate, now_ms=1.0)
        assert replica.last_executed_sequence == -1
        adopted = (_certified_slot(auths, 0, label="adopted-b0"),)
        requests = tuple(
            SbftViewChange(view=0, replica_id=f"replica:{i}",
                           stable_checkpoint=-1, executed=adopted)
            for i in (0, 1, 2)
        )
        replica.deliver("replica:1", SbftNewView(new_view=1, requests=requests),
                        5.0)
        assert replica.view == 1
        assert replica.last_executed_sequence == 0
        assert replica.blockchain.block_at(0).payload == "adopted-b0"
        assert 1 not in replica._committed

    def test_forged_padding_request_does_not_extend_the_prefix(self, auths):
        """Entries from an inadmissible request bundled alongside a valid
        quorum must not reach prefix selection."""
        replica = _sbft_replica(auths, rid="replica:3")
        adopted = (_certified_slot(auths, 0, label="adopted-b0"),)
        other = _certified_slot(auths, 1, label="other-batch")
        forged = SbftViewChange(
            view=0, replica_id="replica:0", stable_checkpoint=-1,
            executed=adopted + (SbftCertifiedSlot(
                sequence=1, view=0, proposal_digest=other.proposal_digest,
                batch=make_no_op_batch("victim-batch", "client:0", 2),
                certificate=other.certificate),))
        requests = tuple(
            SbftViewChange(view=0, replica_id=f"replica:{i}",
                           stable_checkpoint=-1, executed=adopted)
            for i in (1, 2, 3)
        )
        replica.deliver("replica:1",
                        SbftNewView(new_view=1, requests=requests + (forged,)),
                        5.0)
        assert replica.view == 1
        assert replica.last_executed_sequence == 0
        assert replica.blockchain.block_at(0).payload == "adopted-b0"


class TestSbftCollectorTimers:
    def _propose_one(self, auths):
        replica = _sbft_replica(auths, rid="replica:0")
        batch = make_no_op_batch("b0", "client:0", 2)
        replica.create_proposal(0, batch, 0.0)
        replica._collect()
        assert (0, 0) in replica._collector_timers
        return replica

    def test_view_advance_cancels_stale_collector_timers(self, auths):
        """Regression: collector timers armed in the old view used to leak
        across a view change; the stale timeout could fire after the
        collector role rotated away."""
        replica = self._propose_one(auths)
        requests = tuple(
            SbftViewChange(view=0, replica_id=f"replica:{i}",
                           stable_checkpoint=-1, executed=())
            for i in (1, 2, 3)
        )
        output = replica.deliver(
            "replica:1", SbftNewView(new_view=1, requests=requests), 5.0)
        assert replica.view == 1
        assert replica._collector_timers == set()
        from repro.protocols.base import CancelTimer
        cancelled = {action.name for action in output.actions
                     if isinstance(action, CancelTimer)}
        assert "collector:0:0" in cancelled

    def test_commit_proof_clears_timer_bookkeeping(self, auths):
        replica = self._propose_one(auths)
        for rid in ("replica:1", "replica:2", "replica:3"):
            share = auths[rid].threshold_share(
                replica._slot(0, 0).proposal_digest)
            from repro.protocols.sbft import SbftSignShare
            replica.deliver(rid, SbftSignShare(
                view=0, sequence=0,
                proposal_digest=replica._slot(0, 0).proposal_digest,
                share=share, replica_id=rid), 1.0)
        assert replica._slot(0, 0).commit_proof_sent
        assert replica._collector_timers == set()

    def test_stale_timer_fire_is_ignored_after_rotation(self, auths):
        replica = self._propose_one(auths)
        replica.view = 1  # rotated without the timer being cancelled
        replica.timer_fired("collector:0:0", (0, 0), 60.0)
        assert (0, 0) not in replica._collector_timers
        assert not replica._slot(0, 0).commit_proof_sent
