"""Test helpers: a synchronous message router for sans-IO protocol nodes.

The :class:`SyncRouter` delivers messages instantly and in FIFO order,
without the discrete-event simulator.  It is handy for unit tests that
drive a handful of replicas step by step and want to assert on exactly
which messages were produced.  Timers are collected but never fire unless
the test fires them explicitly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.protocols.base import Broadcast, CancelTimer, Message, Send, SetTimer


class SyncRouter:
    """Instant, loss-free message delivery between registered nodes."""

    def __init__(self) -> None:
        self.nodes: Dict[str, object] = {}
        self.replica_ids: List[str] = []
        self.queue = deque()
        self.delivered: List[Tuple[str, str, Message]] = []
        self.timers: Dict[Tuple[str, str], SetTimer] = {}
        self.dropped_links: set = set()
        self.now = 0.0

    def add_replica(self, node) -> None:
        self.nodes[node.node_id] = node
        self.replica_ids.append(node.node_id)

    def add_client(self, node) -> None:
        self.nodes[node.node_id] = node

    def drop_link(self, sender: str, receiver: str) -> None:
        """Silently drop every message from *sender* to *receiver*."""
        self.dropped_links.add((sender, receiver))

    def start_all(self) -> None:
        for node_id, node in self.nodes.items():
            self._apply(node_id, node.start(self.now))
        self.flush()

    def send(self, sender: str, receiver: str, message: Message) -> None:
        """Inject a message from outside the registered nodes."""
        self.queue.append((sender, receiver, message))

    def fire_timer(self, node_id: str, name: str) -> None:
        """Explicitly fire a previously requested timer."""
        timer = self.timers.pop((node_id, name), None)
        if timer is None:
            return
        node = self.nodes[node_id]
        self._apply(node_id, node.timer_fired(timer.name, timer.payload, self.now))
        self.flush()

    def pending_timers(self, node_id: str) -> List[str]:
        return [name for (owner, name) in self.timers if owner == node_id]

    def _apply(self, node_id: str, output) -> None:
        for action in output.actions:
            if isinstance(action, Send):
                self.queue.append((node_id, action.to, action.message))
            elif isinstance(action, Broadcast):
                for receiver in self.replica_ids:
                    if receiver == node_id and not action.include_self:
                        continue
                    self.queue.append((node_id, receiver, action.message))
            elif isinstance(action, SetTimer):
                self.timers[(node_id, action.name)] = action
            elif isinstance(action, CancelTimer):
                self.timers.pop((node_id, action.name), None)

    def flush(self, max_messages: int = 100_000) -> int:
        """Deliver queued messages until quiescence; returns the count."""
        count = 0
        while self.queue and count < max_messages:
            sender, receiver, message = self.queue.popleft()
            count += 1
            self.now += 0.001
            if (sender, receiver) in self.dropped_links:
                continue
            node = self.nodes.get(receiver)
            if node is None or getattr(node, "crashed", False):
                continue
            self.delivered.append((sender, receiver, message))
            self._apply(receiver, node.deliver(sender, message, self.now))
        return count
