"""Bounded model checker: exhaustive cells, counterexamples, replay.

The fast exhaustive cells run here with their explored-state counts
pinned against ``MCK_EXPECTATIONS.json`` (the CI smoke job sweeps the
full cell table through ``examples/model_check.py --expected``).  The
seeded-bug demo re-introduces the PR-3 stale-slot eviction bug under a
monkeypatch and must rediscover it from the pinned hunt walk, shrink the
trace, and replay it — while the same trace stays violation-free against
the fixed code.
"""

import json
import os

import pytest

from repro.fabric import modelcheck
from repro.fabric.modelcheck import (
    MODEL_CHECK_CELLS,
    ModelCheckConfig,
    TraceMismatch,
    build_cluster,
    counterexample_to_json,
    explore,
    hunt,
    load_trace,
    replay_trace,
)
from repro.fabric.revertdemo import (
    REVERT_DEMO_CONFIG,
    REVERT_DEMO_DEFER_P,
    REVERT_DEMO_MAX_STEPS,
    REVERT_DEMO_WALK_SEED,
    run_revert_demo,
)

EXPECTATIONS = os.path.join(os.path.dirname(__file__), "..",
                            "MCK_EXPECTATIONS.json")


def pinned(cell):
    with open(EXPECTATIONS, "r", encoding="utf-8") as handle:
        return json.load(handle)["cells"][cell]


class TestExhaustiveCells:
    def test_nofault_cell_matches_pins(self):
        result = explore(MODEL_CHECK_CELLS["poe-nofault"])
        want = pinned("poe-nofault")
        assert result.ok
        assert result.states_explored == want["states"]
        assert result.transitions == want["transitions"]
        assert result.max_view == 0
        assert result.quiescent_leaves > 0
        assert not result.hit_state_bound

    def test_equivocate_vc_cell_forces_a_view_change(self):
        result = explore(MODEL_CHECK_CELLS["poe-equivocate-vc"])
        want = pinned("poe-equivocate-vc")
        assert result.ok
        assert result.states_explored == want["states"]
        assert result.transitions == want["transitions"]
        # Every completing ordering went through at least one view change:
        # the cell genuinely exercises the recovery engine, not just the
        # happy path around it.
        assert result.min_quiescent_view >= 1

    def test_exploration_is_deterministic(self):
        first = explore(MODEL_CHECK_CELLS["poe-nofault"])
        second = explore(MODEL_CHECK_CELLS["poe-nofault"])
        assert (first.states_explored, first.transitions) \
            == (second.states_explored, second.transitions)

    def test_persistent_sets_preserve_the_verdict(self):
        """The partial-order reduction may shrink the space, not the answer."""
        reduced = MODEL_CHECK_CELLS["poe-nofault"]
        full = explore(ModelCheckConfig(
            **{**reduced.__dict__, "persistent_sets": False}))
        assert full.ok
        assert full.states_explored >= explore(reduced).states_explored


class TestStallAndDeadlock:
    def test_quorum_loss_is_a_stall_counterexample(self, monkeypatch):
        monkeypatch.setattr(modelcheck, "_quorum_reachable",
                            lambda cluster: False)
        result = explore(MODEL_CHECK_CELLS["poe-nofault"])
        assert not result.ok
        assert result.counterexample.kind == "stall"
        assert "quorum" in result.counterexample.violations[0].detail

    def test_expected_stall_is_tolerated(self, monkeypatch):
        monkeypatch.setattr(modelcheck, "_quorum_reachable",
                            lambda cluster: False)
        config = ModelCheckConfig(
            **{**MODEL_CHECK_CELLS["poe-nofault"].__dict__,
               "expect_stall": True})
        result = explore(config)
        assert result.ok
        assert result.stall_leaves > 0

    def test_no_enabled_events_is_a_deadlock_not_quiescence(self,
                                                            monkeypatch):
        monkeypatch.setattr(modelcheck, "_enabled",
                            lambda choices, cluster, config: [])
        result = explore(MODEL_CHECK_CELLS["poe-nofault"])
        assert not result.ok
        assert result.counterexample.kind == "deadlock"
        assert "incomplete" in result.counterexample.violations[0].detail


class TestTraceReplay:
    def test_label_mismatch_is_rejected(self):
        config = MODEL_CHECK_CELLS["poe-nofault"]
        _cluster, scheduler = build_cluster(config)
        seq, _time, _label = scheduler.choices()[0]
        entries = [{"seq": seq, "label": ["deliver", "replica:9",
                                          "replica:9", "Forged", 0, 0, None]}]
        with pytest.raises(TraceMismatch, match="recorded label"):
            replay_trace(config, entries)

    def test_unschedulable_event_is_rejected(self):
        config = MODEL_CHECK_CELLS["poe-nofault"]
        with pytest.raises(TraceMismatch, match="not schedulable"):
            replay_trace(config, [{"seq": 999_999, "label": None}])

    def test_json_round_trip(self, tmp_path):
        demo = run_revert_demo(walks=1)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(demo.minimal_json()))
        config, entries = load_trace(str(path))
        assert config == REVERT_DEMO_CONFIG
        assert len(entries) == len(demo.minimal_trace)
        assert counterexample_to_json(demo.counterexample)["schema"] == 1


class TestRevertDemo:
    def test_pinned_walk_rediscovers_the_stale_slot_bug(self):
        demo = run_revert_demo(walks=1)
        assert demo.found
        assert demo.violating_walk == 0
        kinds = {v.kind for v in demo.counterexample.violations}
        assert "duplicate-execution" in kinds

    def test_minimal_trace_shrinks_and_still_replays(self):
        demo = run_revert_demo(walks=1)
        assert len(demo.minimal_trace) < len(demo.counterexample.trace)
        assert [v.kind for v in demo.replay_violations] \
            == ["duplicate-execution"]

    def test_fixed_code_survives_the_same_schedule(self):
        """The eviction fix closes the bug: same pinned walk, no violation.

        ``run_revert_demo`` restores the real ``adopt_new_view`` on exit,
        so hunting the identical walk against the fixed code must come
        back clean — the demo's counterexample is attributable to the
        reverted fix alone.
        """
        demo = run_revert_demo(walks=1)
        assert demo.found
        clean = hunt(REVERT_DEMO_CONFIG, walks=1,
                     walk_seed=REVERT_DEMO_WALK_SEED,
                     defer_p=REVERT_DEMO_DEFER_P, ordered=True,
                     max_steps=REVERT_DEMO_MAX_STEPS)
        assert clean.ok
        entries = [{"seq": seq, "label": None}
                   for seq, _label in demo.minimal_trace]
        _cluster, violations = replay_trace(REVERT_DEMO_CONFIG, entries)
        assert violations == []
