"""Replica-level Byzantine behaviours and the safety machinery closing them.

PR 5 extends the Byzantine layer past the network boundary: a
``ForgedHistoryReplica`` fabricates view-change histories below a commit
certificate it never held, a ``LyingCheckpointer`` serves corrupted
state-transfer/checkpoint responses, and a ``WrongExecutionReplica``
executes a divergent batch at one slot.  Each behaviour has a scenario
row (all live+safe under the fixed code), an engagement check proving the
attack really fires, and a revert-demo showing the auditor — or the new
same-height state-digest repair — catches the violation when the
corresponding fix is monkeypatched back out.
"""

import dataclasses

import pytest

import repro.protocols.zyzzyva as zyzzyva_module
from repro.crypto.authenticator import make_authenticators
from repro.crypto.hashing import digest
from repro.fabric.audit import SafetyAuditor
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.fabric.scenarios import SCENARIOS, ScenarioParams, run_scenario
from repro.net.byzantine import (
    ForgedHistoryReplica,
    LyingCheckpointer,
    WrongExecutionReplica,
    make_behavior,
)
from repro.protocols.base import Broadcast, NodeConfig, Send
from repro.protocols.checkpoint import (
    CheckpointMessage,
    StateTransferRequest,
    StateTransferResponse,
)
from repro.protocols.client_messages import ClientReplyMessage
from repro.protocols.hotstuff import (
    HotStuffFetchRequest,
    HotStuffFetchResponse,
    HotStuffProposal,
    HotStuffReplica,
    QuorumCertificate,
)
from repro.protocols.replica_base import BatchingReplica
from repro.protocols.zyzzyva import (
    ZyzzyvaCommitCertificate,
    ZyzzyvaLocalCommit,
    ZyzzyvaOrderRequest,
    ZyzzyvaReplica,
    ZyzzyvaViewChange,
)
from repro.workload.transactions import make_no_op_batch

REPLICAS = [f"replica:{i}" for i in range(4)]


def run_cell(protocol, scenario, total_batches=10, seed=11, max_ms=60_000.0):
    """Run one fault-matrix cell and return (cluster, auditor)."""
    params = ScenarioParams(total_batches=total_batches, seed=seed)
    faults, byzantine = SCENARIOS[scenario](params)
    config = ClusterConfig(
        protocol=protocol, num_replicas=params.num_replicas,
        batch_size=params.batch_size, num_clients=1,
        client_outstanding=params.client_outstanding,
        total_batches=total_batches,
        request_timeout_ms=params.request_timeout_ms,
        checkpoint_interval=params.checkpoint_interval,
        faults=faults, byzantine=byzantine, seed=seed,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=max_ms)
    return cluster, auditor


def _old_reconcile(requests, f):
    """The pre-certificate reconciliation: bare plurality below the anchor."""
    anchor = -1
    for request in requests:
        anchor = max(anchor, request.stable_checkpoint)
        certificate = getattr(request, "commit_certificate", None)
        if certificate is not None:
            anchor = max(anchor, certificate.sequence)
    support = {}
    for request in requests:
        for entry in request.executed:
            support.setdefault(entry.sequence, {}).setdefault(
                entry.batch.digest(), []).append(entry)

    def best_entry(sequence, minimum):
        candidates = support.get(sequence)
        if not candidates:
            return None
        _, entries = min(candidates.items(),
                         key=lambda item: (-len(item[1]), item[0]))
        return entries[0] if len(entries) >= minimum else None

    prefix = {}
    for sequence in sorted(s for s in support if s <= anchor):
        entry = best_entry(sequence, 1)
        if entry is not None:
            prefix[sequence] = entry
    kmax = anchor
    while True:
        entry = best_entry(kmax + 1, f + 1)
        if entry is None:
            break
        kmax += 1
        prefix[kmax] = entry
    return prefix, kmax


def _old_transfer_handler(self, sender, message, now_ms):
    """The pre-validation handler: install any response unconditionally."""
    if message.sequence <= self.last_executed_sequence:
        return
    self.executor.fast_forward(
        sequence=message.sequence, view=message.view,
        state_digest=message.state_digest,
        table_snapshot=message.table_snapshot,
    )
    self.charge_execution(self.config.batch_size)
    for stale in [s for s in self._committed if s <= message.sequence]:
        del self._committed[stale]
    if message.view > self.view:
        self.view = message.view
        self.view_change_in_progress = False
        self.on_transfer_view_adopted(message.view, now_ms)
    self.next_sequence = max(self.next_sequence, message.sequence + 1)
    self.try_execute(now_ms)
    self.replay_deferred(now_ms)


# --------------------------------------------------------------------------
# Behaviour layer units.
# --------------------------------------------------------------------------

class TestBehaviourLayer:
    def test_registry_knows_replica_level_behaviors(self):
        assert isinstance(make_behavior("forge-history"), ForgedHistoryReplica)
        assert isinstance(make_behavior("lying-checkpoint"), LyingCheckpointer)
        assert isinstance(make_behavior("wrong-exec"), WrongExecutionReplica)

    def test_cluster_installs_replica_level_behavior(self):
        config = ClusterConfig(
            protocol="poe-mac", num_replicas=4, batch_size=10, total_batches=2,
            byzantine=None, seed=3,
        )
        from repro.net.byzantine import ByzantineSpec
        config.byzantine = ByzantineSpec(behavior="wrong-exec", replica_index=2)
        cluster = Cluster(config)
        behavior = cluster.network._byzantine[replica_id(2)]
        assert isinstance(behavior, WrongExecutionReplica)
        # install() wrapped the replica's commit_slot with the forging shim.
        replica = cluster.network.node(replica_id(2))
        assert replica.commit_slot.__name__ == "wrong_commit_slot"

    def test_forged_request_is_structurally_valid_and_deterministic(self):
        def forge():
            behavior = ForgedHistoryReplica()
            behavior.bind("replica:2", REPLICAS, seed=5)
            original = ZyzzyvaViewChange(
                view=1, replica_id="replica:2", stable_checkpoint=4,
                checkpoint_digest=b"d", executed=(),
            )
            return behavior._forge_zyzzyva_request(original)

        first, second = forge(), forge()
        assert first.stable_checkpoint == -1
        assert first.commit_certificate is None
        sequences = [entry.sequence for entry in first.executed]
        assert sequences == list(range(len(sequences)))  # consecutive from 0
        assert all(e.batch.batch_id.startswith("byzvc:") for e in first.executed)
        assert [e.batch.digest() for e in first.executed] == \
            [e.batch.digest() for e in second.executed]

    def test_wrong_execution_forges_exactly_one_slot(self):
        cluster, _ = run_cell("poe-mac", "wrong-exec")
        behavior = cluster.network._byzantine[replica_id(2)]
        assert behavior.forged_executions == 1


# --------------------------------------------------------------------------
# WrongExecutionReplica: same-height divergence repair.
# --------------------------------------------------------------------------

class TestWrongExecution:
    @pytest.mark.parametrize("protocol", ["poe-mac", "pbft", "zyzzyva",
                                          "hotstuff"])
    def test_row_is_live_and_safe(self, protocol):
        outcome = run_scenario(protocol, "wrong-exec",
                               ScenarioParams(total_batches=10))
        assert outcome.live and outcome.safe, outcome.audit.summary()

    def test_divergent_replica_detects_and_repairs_itself(self):
        """The behaviour's replica ends the run back on the quorum state:
        the stable checkpoint contradicted its journaled digest, the
        divergent suffix was excised and a digest-validated transfer
        installed.  Auditing *with the Byzantine replica included* proves
        the forged block is gone from its ledger."""
        cluster, auditor = run_cell("poe-mac", "wrong-exec")
        byzantine = cluster.network.node(replica_id(2))
        assert byzantine.divergence_repairs >= 1
        assert byzantine.repair_log, "the repair must record its audit trail"
        divergent_from, stable = byzantine.repair_log[0]
        assert divergent_from <= stable
        cluster.byzantine_ids.clear()   # audit the wrong-executor too
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)

    def test_reverted_repair_leaves_the_divergence(self, monkeypatch):
        """Revert-demo: with the same-height repair disabled, the replica
        keeps the fabricated batch at its slot and the auditor (run over
        every replica) reports the divergent prefix."""
        monkeypatch.setattr(BatchingReplica, "_begin_divergence_repair",
                            lambda self, stable, now_ms: None)
        cluster, auditor = run_cell("poe-mac", "wrong-exec")
        cluster.byzantine_ids.clear()
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "divergent-prefix" in kinds


# --------------------------------------------------------------------------
# LyingCheckpointer: validated state transfers.
# --------------------------------------------------------------------------

def make_replica(auths, rid="replica:3", **config_overrides):
    from repro.core.replica import PoeReplica
    config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                        checkpoint_interval=2, **config_overrides)
    return PoeReplica(rid, config, auths[rid])


@pytest.fixture(scope="module")
def auths():
    return make_authenticators(REPLICAS, ["client:0"],
                               seed=b"replica-level-byzantine")


class TestLyingCheckpointer:
    @pytest.mark.parametrize("protocol", ["poe-mac", "pbft", "hotstuff"])
    def test_row_is_live_and_safe(self, protocol):
        outcome = run_scenario(protocol, "lying-checkpoint",
                               ScenarioParams(total_batches=10))
        assert outcome.live and outcome.safe, outcome.audit.summary()

    def test_fabricated_responses_are_never_installed(self):
        cluster, auditor = run_cell("pbft", "lying-checkpoint")
        behavior = cluster.network._byzantine[replica_id(1)]
        assert behavior._poisoned_sequences, "the liar must actually lie"
        honest = [replica for replica in cluster.replicas
                  if replica.node_id != replica_id(1)]
        for replica in honest:
            for sequence in behavior._poisoned_sequences:
                fake_digest = digest("byz-checkpoint", replica_id(1), sequence)
                assert all(block.batch_digest != fake_digest
                           for block in replica.blockchain.blocks())
        assert auditor.check().ok

    @staticmethod
    def _consistent_response(sequence, head_hash=b"canonical-head"):
        """A response whose digest really commits to its head hash (the
        receiver re-derives the commitment before installing)."""
        state_digest = digest("state", sequence, head_hash, b"")
        return state_digest, StateTransferResponse(
            sequence=sequence, view=0, state_digest=state_digest,
            head_hash=head_hash)

    def test_mismatching_response_is_rejected_and_rerequested(self, auths):
        replica = make_replica(auths)
        true_digest, response = self._consistent_response(9)
        for voter in ["replica:1", "replica:2"]:
            replica.deliver(voter, CheckpointMessage(
                sequence=9, state_digest=true_digest, replica_id=voter), 1.0)
        output = replica.deliver("replica:1", StateTransferResponse(
            sequence=9, view=0, state_digest=b"poison"), 2.0)
        assert replica.last_executed_sequence == -1
        assert replica.state_transfer_rejections == 1
        rerequests = [action for action in output.actions
                      if isinstance(action, Broadcast)
                      and isinstance(action.message, StateTransferRequest)]
        assert len(rerequests) == 1
        # The honest response that follows is vouched and installs.
        replica.deliver("replica:2", response, 3.0)
        assert replica.last_executed_sequence == 9

    def test_tampered_head_hash_under_genuine_digest_is_rejected(self, auths):
        """The state digest is public (broadcast in checkpoint messages),
        so a liar can pair the *genuine* digest with a forged head hash;
        the receiver re-derives the digest from the shipped fields and
        rejects the split-field forgery."""
        replica = make_replica(auths)
        true_digest, _ = self._consistent_response(9)
        for voter in ["replica:1", "replica:2"]:
            replica.deliver(voter, CheckpointMessage(
                sequence=9, state_digest=true_digest, replica_id=voter), 1.0)
        replica.deliver("replica:1", StateTransferResponse(
            sequence=9, view=0, state_digest=true_digest,
            head_hash=b"forged-head"), 2.0)
        assert replica.last_executed_sequence == -1
        assert replica.state_transfer_rejections == 1

    def test_unvouched_response_is_parked_until_votes_arrive(self, auths):
        replica = make_replica(auths)
        early_digest, response = self._consistent_response(9)
        replica.deliver("replica:1", response, 1.0)
        assert replica.last_executed_sequence == -1          # parked, not applied
        assert 9 in replica._pending_state_transfers
        for voter in ["replica:1", "replica:2"]:
            replica.deliver(voter, CheckpointMessage(
                sequence=9, state_digest=early_digest, replica_id=voter), 2.0)
        assert replica.last_executed_sequence == 9           # drained on vouch
        assert 9 not in replica._pending_state_transfers

    def test_reverted_validation_fails_the_auditor(self, monkeypatch):
        """Revert-demo: with the old install-anything handler restored, the
        liar's fabricated future checkpoints are installed and the
        auditor's wire-counted vouching check reports them."""
        monkeypatch.setattr(BatchingReplica, "handle_state_transfer_response",
                            _old_transfer_handler)
        _, auditor = run_cell("pbft", "lying-checkpoint")
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "unvouched-state-transfer" in kinds


# --------------------------------------------------------------------------
# ForgedHistoryReplica: certificate-carrying Zyzzyva view changes.
# --------------------------------------------------------------------------

class TestForgedHistory:
    def test_zyzzyva_row_recovers_through_the_forged_view_change(self):
        cluster, auditor = run_cell("zyzzyva", "forge-history")
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)
        honest = [replica for replica in cluster.replicas
                  if replica.node_id != replica_id(2)]
        # The fabricated POM really started a view change...
        assert all(replica.view_changes_completed >= 1 for replica in honest)
        assert any(replica.proofs_of_misbehaviour_accepted > 0
                   for replica in honest)
        # ...and the dark laggard caught up through the anchor transfer.
        assert cluster.replicas[3].last_executed_sequence == \
            max(replica.last_executed_sequence for replica in honest)

    def test_reverted_reconciliation_is_caught_by_the_state_digest_check(
            self, monkeypatch):
        """First revert layer: with the pre-certificate plurality rule
        restored, the laggard adopts the forged sub-anchor history — and
        the new same-height state-digest check spots the contradiction
        with the f+1-backed anchor digest and repairs it."""
        monkeypatch.setattr(zyzzyva_module, "reconcile_speculative_histories",
                            _old_reconcile)
        cluster, auditor = run_cell("zyzzyva", "forge-history")
        laggard = cluster.replicas[3]
        assert laggard.divergence_repairs >= 1, (
            "the forged adoption must be caught by the state-digest repair")
        assert auditor.check().ok

    def test_fully_reverted_forgery_fails_the_auditor(self, monkeypatch):
        """Second revert layer: disabling the repair as well leaves the
        laggard on the fabricated history, and the auditor reports the
        divergent prefix."""
        monkeypatch.setattr(zyzzyva_module, "reconcile_speculative_histories",
                            _old_reconcile)
        monkeypatch.setattr(BatchingReplica, "_begin_divergence_repair",
                            lambda self, stable, now_ms: None)
        _, auditor = run_cell("zyzzyva", "forge-history")
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "divergent-prefix" in kinds

    def test_forged_certificates_collide_with_local_knowledge(self, auths):
        """With ``forge_certificates`` the fabricated entries carry
        structurally valid certificates; an honest replica that executed
        the real slots below its stable checkpoint rejects the request on
        admission (at most one genuine certificate can exist per slot)."""
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            checkpoint_interval=2, request_timeout_ms=100.0)
        replica = ZyzzyvaReplica("replica:1", config, auths["replica:1"])
        primary_history = digest("zyzzyva-history", "genesis")
        for sequence in range(4):
            batch = make_no_op_batch(f"real-{sequence}", "client:0", 2)
            primary_history = digest("zyzzyva-history", primary_history,
                                     sequence, batch.digest())
            replica.deliver("replica:0", ZyzzyvaOrderRequest(
                view=0, sequence=sequence, batch=batch,
                history_digest=primary_history), 1.0)
        assert replica.last_executed_sequence == 3
        for voter in ["replica:0", "replica:2", "replica:3"]:
            replica.deliver(voter, CheckpointMessage(
                sequence=1, state_digest=replica._own_checkpoint_digests[1],
                replica_id=voter), 2.0)
        assert replica.checkpoints.stable_sequence == 1
        behavior = ForgedHistoryReplica(forge_certificates=True)
        behavior.bind("replica:2", REPLICAS, seed=5)
        forged = behavior._forge_zyzzyva_request(ZyzzyvaViewChange(
            view=0, replica_id="replica:2", stable_checkpoint=1, executed=()))
        assert forged.executed[0].commit_certificate is not None
        assert not replica.validate_view_change_request_message(forged, 0)
        # Without the fabricated certificates the request is structurally
        # admissible — the sub-anchor support rule defuses it instead.
        uncertified = ForgedHistoryReplica(forge_certificates=False)
        uncertified.bind("replica:2", REPLICAS, seed=5)
        plain = uncertified._forge_zyzzyva_request(ZyzzyvaViewChange(
            view=0, replica_id="replica:2", stable_checkpoint=1, executed=()))
        assert replica.validate_view_change_request_message(plain, 0)


# --------------------------------------------------------------------------
# Zyzzyva certificate plumbing and the stranded-batch regressions.
# --------------------------------------------------------------------------

class TestZyzzyvaCertificateCarrying:
    def _replica_with_history(self, auths, slots=3):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            checkpoint_interval=10, request_timeout_ms=100.0)
        replica = ZyzzyvaReplica("replica:1", config, auths["replica:1"])
        history = digest("zyzzyva-history", "genesis")
        batches = []
        for sequence in range(slots):
            batch = make_no_op_batch(f"b{sequence}", "client:0", 2)
            history = digest("zyzzyva-history", history, sequence,
                             batch.digest())
            replica.deliver("replica:0", ZyzzyvaOrderRequest(
                view=0, sequence=sequence, batch=batch,
                history_digest=history), 1.0)
            batches.append(batch)
        return replica, batches

    def _certificate_for(self, replica, sequence, batch):
        record = replica.executor.executed(sequence)
        return ZyzzyvaCommitCertificate(
            batch_id=batch.batch_id, view=0, sequence=sequence,
            result_digest=record.result_digest,
            responders=("replica:0", "replica:1", "replica:2"),
            client_id="client:0",
        )

    def test_view_change_requests_carry_per_slot_certificates(self, auths):
        replica, batches = self._replica_with_history(auths)
        certificate = self._certificate_for(replica, 1, batches[1])
        replica.deliver("client:0", certificate, 2.0)
        request = replica.build_view_change_request(0)
        by_sequence = {entry.sequence: entry for entry in request.executed}
        assert by_sequence[1].commit_certificate is not None
        assert by_sequence[1].commit_certificate.batch_id == batches[1].batch_id
        assert by_sequence[0].commit_certificate is None

    def test_old_view_certificate_still_earns_local_commit(self, auths):
        """Regression (flushed out by the forge-history scenario): a view
        change between the client collecting 2f+1 responses and
        distributing the certificate must not strand the batch — the
        certificate is acceptable for an older view when the certified
        slot survived into the current history."""
        replica, batches = self._replica_with_history(auths)
        replica.view = 1
        certificate = self._certificate_for(replica, 1, batches[1])
        output = replica.deliver("client:0", certificate, 2.0)
        acks = [action for action in output.actions
                if isinstance(action, Send)
                and isinstance(action.message, ZyzzyvaLocalCommit)]
        assert len(acks) == 1

    def test_future_view_certificate_is_rejected(self, auths):
        replica, batches = self._replica_with_history(auths)
        certificate = dataclasses.replace(
            self._certificate_for(replica, 1, batches[1]), view=3)
        output = replica.deliver("client:0", certificate, 2.0)
        assert not any(isinstance(action.message, ZyzzyvaLocalCommit)
                       for action in output.actions
                       if isinstance(action, Send))

    def test_client_alternates_a_stalled_certificate_with_retransmission(self):
        """Regression: a client holding 2f+1 matching replies used to
        re-broadcast a commit certificate on every timeout, stranding the
        batch forever when the certificate could not complete.  Evidence
        is never discarded now — a crashed responder can make it
        irreplaceable, and replicas accept older-view certificates for
        surviving slots — but consecutive timeouts on the *same* evidence
        alternate with request retransmission, so a dead-slot certificate
        cannot loop: retransmission re-orders the batch and produces
        fresh evidence that overtakes the old."""
        from repro.protocols.zyzzyva import ZyzzyvaClientPool
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            request_timeout_ms=100.0)
        pool = ZyzzyvaClientPool("client:0", config, total_batches=2,
                                 target_outstanding=1)
        pool.start(0.0)
        batch_id = next(iter(pool._pending))
        for sender in ["replica:0", "replica:1", "replica:2"]:
            pool.deliver(sender, ClientReplyMessage(
                batch_id=batch_id, view=0, sequence=0, result_digest=b"r",
                replica_id=sender, speculative=True), 1.0)
        pool.current_view = 1  # a view change happened meanwhile

        def classify(output):
            certs = [a for a in output.actions if isinstance(a, Broadcast)
                     and isinstance(a.message, ZyzzyvaCommitCertificate)]
            retrans = [a for a in output.actions if isinstance(a, Broadcast)
                       and getattr(a.message, "retransmission", False)]
            return bool(certs), bool(retrans)

        # First timeout: the evidence is tried as a commit certificate.
        assert classify(pool.timer_fired(
            f"request:{batch_id}", batch_id, 200.0)) == (True, False)
        # Same evidence again: alternate with a retransmission instead of
        # looping the certificate.
        assert classify(pool.timer_fired(
            f"request:{batch_id}", batch_id, 400.0)) == (False, True)
        # The certificate stays retryable — evidence was not discarded.
        assert classify(pool.timer_fired(
            f"request:{batch_id}", batch_id, 800.0)) == (True, False)


# --------------------------------------------------------------------------
# HotStuff chain sync.
# --------------------------------------------------------------------------

def _hotstuff_replica(auths, rid="replica:3"):
    config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                        checkpoint_interval=5)
    return HotStuffReplica(rid, config, auths[rid])


class TestHotStuffChainSync:
    def test_dark_replica_recovers_via_fetch_not_state_transfer(self):
        """The victim of dark links fetches every certified round it
        missed and finishes fully caught up — the hard-gap stall that
        used to require checkpoint state transfer is gone."""
        cluster, auditor = run_cell("hotstuff", "dark-replicas",
                                    total_batches=20)
        victim = cluster.replicas[3]
        assert victim.proposals_fetched > 0
        assert auditor.check().ok
        top = max(r.last_executed_sequence for r in cluster.replicas
                  if not r.crashed)
        assert victim.last_executed_sequence == top

    def test_fetch_response_is_verified_against_the_qc_digest(self, auths):
        replica = _hotstuff_replica(auths)
        batch = make_no_op_batch("fetched", "client:0", 2)
        parent = QuorumCertificate(round_number=4, block_digest=b"parent")
        block_digest = digest("hotstuff-block", 5, batch.digest(),
                              parent.block_digest)
        replica._qc_digests[5] = block_digest
        proposal = HotStuffProposal(round_number=5, batch=batch,
                                    block_digest=block_digest, justify=parent,
                                    leader_id="replica:1")
        # A tampered batch cannot reproduce the certified digest.
        forged = dataclasses.replace(
            proposal, batch=make_no_op_batch("tampered", "client:0", 2))
        replica.deliver("replica:1", HotStuffFetchResponse(proposal=forged), 1.0)
        assert 5 not in replica._proposals
        # A proposal whose claimed digest differs from the QC is dropped too.
        mislabelled = dataclasses.replace(proposal, block_digest=b"other")
        replica.deliver("replica:1",
                        HotStuffFetchResponse(proposal=mislabelled), 1.0)
        assert 5 not in replica._proposals
        replica.deliver("replica:1", HotStuffFetchResponse(proposal=proposal), 2.0)
        assert replica._proposals[5] is proposal
        assert replica.proposals_fetched == 1

    def test_fetch_request_served_from_stored_proposals(self, auths):
        replica = _hotstuff_replica(auths, rid="replica:1")
        batch = make_no_op_batch("held", "client:0", 2)
        parent = QuorumCertificate(round_number=2, block_digest=b"p")
        block_digest = digest("hotstuff-block", 3, batch.digest(), b"p")
        replica._proposals[3] = HotStuffProposal(
            round_number=3, batch=batch, block_digest=block_digest,
            justify=parent, leader_id="replica:3")
        output = replica.deliver("replica:2", HotStuffFetchRequest(
            round_number=3, block_digest=block_digest,
            replica_id="replica:2"), 1.0)
        served = [action.message for action in output.actions
                  if isinstance(action, Send)
                  and isinstance(action.message, HotStuffFetchResponse)]
        assert len(served) == 1 and served[0].proposal.batch is batch

    def test_bookkeeping_is_pruned_below_the_stable_checkpoint(self):
        """Satellite: ``_proposals``/``_rounds``/``_voted_rounds``/
        ``_qc_digests`` no longer grow for the lifetime of the run."""
        config = ClusterConfig(protocol="hotstuff", num_replicas=4,
                               batch_size=10, total_batches=30,
                               checkpoint_interval=5, seed=11)
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=60_000.0)
        for replica in cluster.replicas:
            assert replica.checkpoints.stable_sequence > 0
            assert replica._pruned_below_round > 0
            floor = replica._pruned_below_round
            assert all(r >= floor for r in replica._proposals)
            assert all(r >= floor for r in replica._qc_digests)
            assert all(r >= floor for r in replica._voted_rounds)
            assert all(r >= floor for r in replica._rounds)

    @pytest.mark.parametrize("seed", [7, 99])
    def test_blindly_settled_rounds_are_recovered_by_query(self, seed):
        """Regression for the settled-as-skipped window: a replica
        partitioned through the start of the chain settles early rounds
        without knowing whether they certified anything (the one justify
        carrying each QC is gone from the wire).  At these seeds it used
        to keep a forked ledger — the re-proposed batch executed at a
        later round only on the victim, a cross-replica duplicate
        execution.  The fetch *query* (answered with the signed QC itself)
        lets it learn the missed certificates and resync."""
        cluster, auditor = run_cell("hotstuff", "forge-history", seed=seed)
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)

    def test_reverted_fetch_still_heals_by_state_transfer(self, monkeypatch):
        """Sanity: disabling the fetch protocol degrades the dark-replicas
        cell back to the checkpoint-transfer path without losing safety
        (the fetch is an optimisation of recovery, not its only leg)."""
        monkeypatch.setattr(HotStuffReplica, "_request_missing_proposal",
                            lambda self, round_number, block_digest: None)
        cluster, auditor = run_cell("hotstuff", "dark-replicas",
                                    total_batches=20)
        victim = cluster.replicas[3]
        assert victim.proposals_fetched == 0
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)


# --------------------------------------------------------------------------
# Auditor: wire-counted vouching of installed state.
# --------------------------------------------------------------------------

class TestUnvouchedStateTransferCheck:
    def test_vouched_sync_blocks_pass(self):
        cluster, auditor = run_cell("pbft", "dark-replicas")
        synced = [replica for replica in cluster.replicas
                  if any(block.payload == "checkpoint-sync"
                         for block in replica.blockchain.blocks())]
        assert synced, "the dark replica must have installed a transfer"
        assert auditor.check().ok

    def test_fabricated_sync_block_is_flagged(self):
        cluster, auditor = run_cell("pbft", "no-fault")
        victim = cluster.replicas[3]
        victim.executor.fast_forward(
            sequence=victim.last_executed_sequence + 7, view=0,
            state_digest=b"never-vouched")
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "unvouched-state-transfer" in kinds
