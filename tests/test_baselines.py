"""Tests for the baseline protocols: PBFT, Zyzzyva, SBFT and HotStuff."""


from repro.crypto.authenticator import make_authenticators
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.net.faults import FaultSchedule
from repro.protocols.base import NodeConfig
from repro.protocols.client_messages import ClientReplyMessage, ClientRequestMessage
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.pbft import (
    PbftCommit,
    PbftClientPool,
    PbftPrepare,
    PbftReplica,
)
from repro.protocols.zyzzyva import (
    ZyzzyvaClientPool,
    ZyzzyvaCommitCertificate,
    ZyzzyvaLocalCommit,
    ZyzzyvaOrderRequest,
    ZyzzyvaReplica,
)
from repro.workload.transactions import make_no_op_batch
from repro.workload.ycsb import YcsbConfig

from tests.helpers import SyncRouter

REPLICAS = [f"replica:{i}" for i in range(4)]


def run_cluster(protocol, total_batches=10, num_replicas=4, faults=None,
                execute=True, **kwargs):
    config = ClusterConfig(
        protocol=protocol,
        num_replicas=num_replicas,
        batch_size=10,
        num_clients=1,
        client_outstanding=4,
        total_batches=total_batches,
        execute_operations=execute,
        use_ycsb_payload=execute,
        ycsb=YcsbConfig(num_records=200, seed=7),
        checkpoint_interval=20,
        faults=faults,
        seed=7,
        **kwargs,
    )
    cluster = Cluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=120_000)
    return cluster


class TestPbft:
    def test_cluster_completes_and_replicas_agree(self):
        cluster = run_cluster("pbft")
        assert all(pool.is_done() for pool in cluster.pools)
        digests = {replica.executor.state_digest() for replica in cluster.replicas}
        assert len(digests) == 1
        assert all(replica.blockchain.verify_chain() for replica in cluster.replicas)

    def test_pbft_client_quorum_is_f_plus_1(self):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=1)
        pool = PbftClientPool("client:0", config, total_batches=1,
                              target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        pool.deliver("replica:1",
                     ClientReplyMessage(batch_id=batch_id, view=0, sequence=0,
                                        result_digest=b"r", replica_id="replica:1"),
                     1.0)
        assert pool.completed_batches == 0
        pool.deliver("replica:2",
                     ClientReplyMessage(batch_id=batch_id, view=0, sequence=0,
                                        result_digest=b"r", replica_id="replica:2"),
                     2.0)
        assert pool.completed_batches == 1

    def test_pbft_message_flow_is_quadratic(self):
        """PREPARE and COMMIT are all-to-all broadcasts from every replica."""
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=5,
                            execute_operations=True)
        auths = make_authenticators(REPLICAS, ["client:0"], seed=b"pbft-flow")
        router = SyncRouter()
        replicas = [PbftReplica(rid, config, auths[rid]) for rid in REPLICAS]
        for replica in replicas:
            router.add_replica(replica)
        pool = PbftClientPool(
            "client:0", config,
            batch_source=lambda i, now: make_no_op_batch(f"b{i}", "client:0", 5, now),
            total_batches=1, target_outstanding=1)
        router.add_client(pool)
        router.start_all()
        router.flush()
        prepares = [m for (_, _, m) in router.delivered if isinstance(m, PbftPrepare)]
        commits = [m for (_, _, m) in router.delivered if isinstance(m, PbftCommit)]
        # Every replica broadcasts to the n-1 others in both phases.
        assert len(prepares) == 4 * 3
        assert len(commits) == 4 * 3
        assert pool.is_done()

    def test_pbft_survives_backup_crash(self):
        faults = FaultSchedule.single_backup_crash(replica_id(3), at_ms=0.0)
        cluster = run_cluster("pbft", faults=faults, execute=False)
        assert all(pool.is_done() for pool in cluster.pools)

    def test_pbft_view_change_on_primary_crash(self):
        faults = FaultSchedule.primary_crash(replica_id(0), at_ms=1.0)
        cluster = run_cluster("pbft", faults=faults, execute=False,
                              request_timeout_ms=100.0)
        live = [replica for replica in cluster.replicas if not replica.crashed]
        assert all(pool.is_done() for pool in cluster.pools)
        assert all(replica.view >= 1 for replica in live)


class TestZyzzyva:
    def test_fault_free_cluster_completes(self):
        cluster = run_cluster("zyzzyva")
        assert all(pool.is_done() for pool in cluster.pools)
        digests = {replica.executor.state_digest() for replica in cluster.replicas}
        assert len(digests) == 1

    def test_replicas_execute_immediately_from_order_request(self):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=5,
                            execute_operations=True)
        auths = make_authenticators(REPLICAS, ["client:0"], seed=b"zyz")
        replica = ZyzzyvaReplica("replica:1", config, auths["replica:1"])
        batch = make_no_op_batch("b0", "client:0", 5)
        order = ZyzzyvaOrderRequest(view=0, sequence=0, batch=batch,
                                    history_digest=b"h0")
        output = replica.deliver("replica:0", order, 1.0)
        assert replica.executed_batches == 1
        replies = [a.message for a in output.sends()
                   if isinstance(a.message, ClientReplyMessage)]
        assert len(replies) == 1
        assert replies[0].speculative

    def test_client_requires_all_n_matching_replies(self):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=1)
        pool = ZyzzyvaClientPool("client:0", config, total_batches=1,
                                 target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        for i in range(3):
            pool.deliver(f"replica:{i}",
                         ClientReplyMessage(batch_id=batch_id, view=0, sequence=0,
                                            result_digest=b"r",
                                            replica_id=f"replica:{i}"),
                         float(i))
        assert pool.completed_batches == 0  # 3 of 4 is not enough on the fast path

    def test_client_falls_back_to_commit_certificates_on_timeout(self):
        """With 2f+1 matching replies and a timeout, the client runs the
        commit-certificate phase and completes after 2f+1 LOCAL-COMMITs."""
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=1,
                            request_timeout_ms=50.0)
        pool = ZyzzyvaClientPool("client:0", config, total_batches=1,
                                 target_outstanding=1, timeout_ms=50.0)
        output = pool.start(0.0)
        batch_id = list(pool._pending)[0]
        for i in range(3):
            pool.deliver(f"replica:{i}",
                         ClientReplyMessage(batch_id=batch_id, view=0, sequence=0,
                                            result_digest=b"r",
                                            replica_id=f"replica:{i}"),
                         float(i))
        timeout_output = pool.timer_fired(f"request:{batch_id}", batch_id, 51.0)
        certs = [a for a in timeout_output.broadcasts()
                 if isinstance(a.message, ZyzzyvaCommitCertificate)]
        assert len(certs) == 1
        assert len(certs[0].message.responders) == 3
        for i in range(3):
            pool.deliver(f"replica:{i}",
                         ZyzzyvaLocalCommit(batch_id=batch_id, view=0, sequence=0,
                                            replica_id=f"replica:{i}"),
                         60.0 + i)
        assert pool.completed_batches == 1

    def _executed_replica(self, seed):
        """A replica that speculatively executed one batch at sequence 0."""
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=5,
                            execute_operations=True)
        auths = make_authenticators(REPLICAS, ["client:0"], seed=seed)
        replica = ZyzzyvaReplica("replica:1", config, auths["replica:1"])
        batch = make_no_op_batch("b0", "client:0", 5)
        replica.deliver("replica:0",
                        ZyzzyvaOrderRequest(view=0, sequence=0, batch=batch,
                                            history_digest=b"h0"), 1.0)
        return replica, replica.executor.executed(0).result_digest

    def _acks(self, output):
        return [a.message for a in output.sends()
                if isinstance(a.message, ZyzzyvaLocalCommit)]

    def test_replica_acknowledges_valid_commit_certificate(self):
        replica, result_digest = self._executed_replica(b"zyz-cc")
        cert = ZyzzyvaCommitCertificate(
            batch_id="b0", view=0, sequence=0, result_digest=result_digest,
            responders=("replica:0", "replica:1", "replica:2"),
            client_id="client:0")
        output = replica.deliver("client:0", cert, 2.0)
        assert len(self._acks(output)) == 1

    def test_replica_rejects_undersized_commit_certificate(self):
        replica, result_digest = self._executed_replica(b"zyz-cc2")
        cert = ZyzzyvaCommitCertificate(
            batch_id="b0", view=0, sequence=0, result_digest=result_digest,
            responders=("replica:0", "replica:1"), client_id="client:0")
        output = replica.deliver("client:0", cert, 2.0)
        assert self._acks(output) == []

    def test_replica_rejects_forged_commit_certificates(self):
        """Regression: a certificate is client input — fabricated responder
        ids, a result digest the replica never computed, a slot it never
        executed or a stale view must all fail to earn a LOCAL-COMMIT."""
        replica, result_digest = self._executed_replica(b"zyz-cc3")
        fake_responders = ZyzzyvaCommitCertificate(
            batch_id="b0", view=0, sequence=0, result_digest=result_digest,
            responders=("replica:0", "ghost:1", "ghost:2"), client_id="client:0")
        wrong_digest = ZyzzyvaCommitCertificate(
            batch_id="b0", view=0, sequence=0, result_digest=b"forged",
            responders=("replica:0", "replica:1", "replica:2"),
            client_id="client:0")
        never_executed = ZyzzyvaCommitCertificate(
            batch_id="b9", view=0, sequence=9, result_digest=result_digest,
            responders=("replica:0", "replica:1", "replica:2"),
            client_id="client:0")
        stale_view = ZyzzyvaCommitCertificate(
            batch_id="b0", view=3, sequence=0, result_digest=result_digest,
            responders=("replica:0", "replica:1", "replica:2"),
            client_id="client:0")
        for forged in (fake_responders, wrong_digest, never_executed, stale_view):
            output = replica.deliver("client:0", forged, 2.0)
            assert self._acks(output) == [], forged
        assert replica.local_commits_sent == 0

    def test_single_backup_crash_forces_slow_completion(self):
        """Even one crashed backup pushes every request through the timeout."""
        faults = FaultSchedule.single_backup_crash(replica_id(3), at_ms=0.0)
        cluster = run_cluster("zyzzyva", total_batches=3, faults=faults,
                              execute=False, request_timeout_ms=40.0)
        assert all(pool.is_done() for pool in cluster.pools)
        result = cluster.result(warmup_fraction=0.0)
        assert result.avg_latency_ms >= 40.0
        assert cluster.pools[0].commit_certificates_sent >= 3


class TestSbft:
    def test_fault_free_cluster_completes(self):
        cluster = run_cluster("sbft")
        assert all(pool.is_done() for pool in cluster.pools)
        digests = {replica.executor.state_digest() for replica in cluster.replicas}
        assert len(digests) == 1
        assert all(replica.slow_path_slots == 0 for replica in cluster.replicas)

    def test_execute_ack_completes_client_with_single_reply(self):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=1)
        from repro.protocols.sbft import SbftClientPool
        pool = SbftClientPool("client:0", config, total_batches=1,
                              target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        pool.deliver("replica:1",
                     ClientReplyMessage(batch_id=batch_id, view=0, sequence=0,
                                        result_digest=b"r", replica_id="replica:1"),
                     1.0)
        assert pool.completed_batches == 1

    def test_backup_crash_triggers_slow_path(self):
        faults = FaultSchedule.single_backup_crash(replica_id(3), at_ms=0.0)
        cluster = run_cluster("sbft", total_batches=5, faults=faults, execute=False)
        assert all(pool.is_done() for pool in cluster.pools)
        collector = cluster.replicas[0]
        assert collector.slow_path_slots >= 5
        result = cluster.result(warmup_fraction=0.0)
        # Every slot pays the collector timeout before falling back.
        assert result.avg_latency_ms >= 50.0


class TestHotStuff:
    def test_fault_free_cluster_completes(self):
        cluster = run_cluster("hotstuff")
        assert all(pool.is_done() for pool in cluster.pools)
        digests = {replica.executor.state_digest() for replica in cluster.replicas}
        assert len(digests) == 1

    def test_leaders_rotate_across_rounds(self):
        cluster = run_cluster("hotstuff", total_batches=8, execute=False)
        leaders = {replica.node_id: replica.rounds_started
                   for replica in cluster.replicas}
        # More than one replica must have acted as leader.
        assert sum(1 for count in leaders.values() if count > 0) >= 2

    def test_commit_needs_three_chain(self):
        """A proposed block only executes once the chain extends 3 rounds past it."""
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=5,
                            execute_operations=True)
        auths = make_authenticators(REPLICAS, ["client:0"], seed=b"hotstuff-chain")
        router = SyncRouter()
        replicas = [HotStuffReplica(rid, config, auths[rid]) for rid in REPLICAS]
        for replica in replicas:
            router.add_replica(replica)
        router.start_all()
        batch = make_no_op_batch("b0", "client:0", 5)
        request = ClientRequestMessage(batch=batch, reply_to="client:0")
        # Broadcast the request to every replica (HotStuff clients do this).
        for rid in REPLICAS:
            router.send("client:0", rid, request)
        router.flush()
        # One real block plus dummy blocks to flush the pipeline; every
        # replica eventually executes exactly one batch.
        assert all(replica.executed_batches == 1 for replica in replicas)
        assert all(replica.last_executed_sequence == 0 for replica in replicas)

    def test_round_leader_skipped_after_pacemaker_timeout(self):
        """A crashed replica's round is skipped so the chain keeps growing."""
        faults = FaultSchedule.single_backup_crash(replica_id(1), at_ms=0.0)
        cluster = run_cluster("hotstuff", total_batches=6, faults=faults,
                              execute=False)
        assert all(pool.is_done() for pool in cluster.pools)
        live = [replica for replica in cluster.replicas if not replica.crashed]
        assert any(replica.pacemaker_timeouts > 0 for replica in live)
