"""Tests for the shared replica machinery: deferral, state transfer, replies."""

import pytest

from repro.core.replica import PoeReplica
from repro.crypto.authenticator import SchemeKind, make_authenticators
from repro.fabric.cluster import Cluster, ClusterConfig
from repro.protocols.base import NodeConfig
from repro.protocols.checkpoint import (
    CheckpointMessage,
    StateTransferRequest,
    StateTransferResponse,
)
from repro.protocols.client_messages import ClientRequestMessage
from repro.workload.transactions import make_no_op_batch

REPLICAS = [f"replica:{i}" for i in range(4)]


@pytest.fixture()
def auths():
    return make_authenticators(REPLICAS, ["client:0"], seed=b"replica-base")


def make_replica(auths, rid="replica:1", **config_kwargs):
    config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                        execute_operations=True, checkpoint_interval=4,
                        **config_kwargs)
    return PoeReplica(rid, config, auths[rid], scheme=SchemeKind.MACS)


class TestDeferredMessages:
    def test_future_view_messages_are_buffered_and_replayed(self, auths):
        replica = make_replica(auths)
        from repro.core.messages import PoePropose
        batch = make_no_op_batch("future", "client:0", 2)
        future = PoePropose(view=1, sequence=0, batch=batch)
        replica.deliver("replica:1", future, 1.0)
        assert replica._accepted_proposal == {}
        assert 1 in replica._deferred_messages
        # Entering view 1 replays the buffered proposal.
        replica.view = 1
        replica.replay_deferred(2.0)
        assert (1, 0) in replica._accepted_proposal

    def test_replay_only_covers_entered_views(self, auths):
        replica = make_replica(auths)
        replica.defer_message(3, "replica:0", object())
        replica.view = 1
        replica.replay_deferred(1.0)
        assert 3 in replica._deferred_messages


class TestStateTransfer:
    def test_up_to_date_replica_ships_state(self, auths):
        replica = make_replica(auths, rid="replica:1")
        # Execute a few batches directly so there is state to ship.
        for seq in range(4):
            batch = make_no_op_batch(f"b{seq}", "client:0", 2)
            replica.commit_slot(seq, 0, batch, proof=None, now_ms=1.0)
        replica.checkpoints.record_vote(3, replica.executor.state_digest(), "replica:1")
        replica.checkpoints.record_vote(3, replica.executor.state_digest(), "replica:2")
        replica.checkpoints.record_vote(3, replica.executor.state_digest(), "replica:3")
        output = replica.deliver(
            "replica:3", StateTransferRequest(sequence=3, replica_id="replica:3"), 5.0)
        responses = [send.message for send in output.sends()
                     if isinstance(send.message, StateTransferResponse)]
        assert len(responses) == 1
        assert responses[0].sequence == 3
        assert responses[0].table_snapshot is not None

    def test_lagging_replica_requests_transfer_after_f_plus_1_votes(self, auths):
        replica = make_replica(auths, rid="replica:3")
        digest = b"remote-state"
        replica.deliver("replica:1",
                        CheckpointMessage(sequence=7, state_digest=digest,
                                          replica_id="replica:1"), 1.0)
        output = replica.deliver(
            "replica:2", CheckpointMessage(sequence=7, state_digest=digest,
                                           replica_id="replica:2"), 2.0)
        requests = [send.message for send in output.sends()
                    if isinstance(send.message, StateTransferRequest)]
        assert len(requests) == 1
        assert requests[0].sequence == 7

    def test_duplicate_checkpoint_votes_do_not_re_request(self, auths):
        replica = make_replica(auths, rid="replica:3")
        digest = b"remote-state"
        for voter in ["replica:1", "replica:2"]:
            replica.deliver(voter, CheckpointMessage(sequence=7, state_digest=digest,
                                                     replica_id=voter), 1.0)
        output = replica.deliver(
            "replica:1", CheckpointMessage(sequence=7, state_digest=digest,
                                           replica_id="replica:1"), 3.0)
        assert not any(isinstance(send.message, StateTransferRequest)
                       for send in output.sends())

    def test_installing_a_response_fast_forwards_execution(self, auths):
        from repro.crypto.hashing import digest
        replica = make_replica(auths, rid="replica:3")
        # f + 1 checkpoint votes vouch for the digest before the transfer
        # arrives (an unvouched response would be parked, not applied),
        # and the digest must really commit to the shipped head hash and
        # snapshot — the receiver re-derives it before installing.
        snapshot = {"user1": "value"}
        head_hash = b"source-head"
        state_digest = digest("state", 9, head_hash,
                              digest("store", sorted(snapshot.items())))
        for voter in ["replica:1", "replica:2"]:
            replica.deliver(voter, CheckpointMessage(
                sequence=9, state_digest=state_digest, replica_id=voter), 1.0)
        response = StateTransferResponse(sequence=9, view=2,
                                         state_digest=state_digest,
                                         table_snapshot=snapshot,
                                         head_hash=head_hash)
        replica.deliver("replica:1", response, 5.0)
        assert replica.last_executed_sequence == 9
        assert replica.view == 2
        assert replica.store.get("user1") == "value"
        assert replica.next_sequence >= 10

    def test_stale_responses_are_ignored(self, auths):
        replica = make_replica(auths, rid="replica:3")
        batch = make_no_op_batch("b0", "client:0", 2)
        replica.commit_slot(0, 0, batch, proof=None, now_ms=1.0)
        replica.deliver("replica:1",
                        StateTransferResponse(sequence=0, view=0, state_digest=b"d"),
                        5.0)
        assert replica.last_executed_sequence == 0
        assert replica.view == 0


class TestReplyHandling:
    def test_requests_are_not_proposed_twice(self, auths):
        primary = make_replica(auths, rid="replica:0")
        batch = make_no_op_batch("dup", "client:0", 2)
        request = ClientRequestMessage(batch=batch, reply_to="client:0")
        first = primary.deliver("client:0", request, 1.0)
        second = primary.deliver("client:0", request, 2.0)
        proposes = [a for out in (first, second) for a in out.broadcasts()]
        assert len(proposes) == 1

    def test_progress_timer_only_armed_for_retransmissions(self, auths):
        backup = make_replica(auths, rid="replica:2")
        batch = make_no_op_batch("b", "client:0", 2)
        plain = ClientRequestMessage(batch=batch, reply_to="client:0")
        output = backup.deliver("client:0", plain, 1.0)
        assert output.timers() == []
        retransmitted = ClientRequestMessage(batch=batch, reply_to="client:0",
                                             retransmission=True)
        output = backup.deliver("client:0", retransmitted, 2.0)
        assert [t.name for t in output.timers()] == [f"progress:{batch.batch_id}"]
        forwards = output.sends()
        assert forwards and forwards[0].to == "replica:0"


class TestNonSpeculativeAblation:
    def test_nospec_cluster_completes_and_agrees(self):
        config = ClusterConfig(protocol="poe-nospec", num_replicas=4, batch_size=10,
                               total_batches=10, client_outstanding=4, seed=31)
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=60_000)
        assert all(pool.is_done() for pool in cluster.pools)
        digests = {replica.executor.state_digest() for replica in cluster.replicas}
        assert len(digests) == 1

    def test_nospec_adds_a_commit_phase_to_latency(self):
        def run(protocol):
            config = ClusterConfig(protocol=protocol, num_replicas=4, batch_size=10,
                                   total_batches=20, client_outstanding=2, seed=33)
            cluster = Cluster(config)
            cluster.start()
            cluster.run_until_done(max_ms=60_000)
            return cluster.result(warmup_fraction=0.0)

        speculative = run("poe")
        non_speculative = run("poe-nospec")
        assert speculative.avg_latency_ms < non_speculative.avg_latency_ms

    def test_nospec_replies_are_not_speculative(self, auths):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            execute_operations=True)
        replicas = {rid: PoeReplica(rid, config, auths[rid],
                                    scheme=SchemeKind.MACS, speculative=False)
                    for rid in REPLICAS}
        from tests.helpers import SyncRouter
        from repro.core.client import PoeClientPool
        router = SyncRouter()
        for replica in replicas.values():
            router.add_replica(replica)
        pool = PoeClientPool(
            "client:0", config,
            batch_source=lambda i, now: make_no_op_batch(f"b{i}", "client:0", 2, now),
            target_outstanding=1, total_batches=1)
        router.add_client(pool)
        router.start_all()
        router.flush()
        from repro.protocols.client_messages import ClientReplyMessage
        replies = [m for (_, _, m) in router.delivered
                   if isinstance(m, ClientReplyMessage)]
        assert replies
        assert all(not reply.speculative for reply in replies)
        assert pool.is_done()


class TestOnMessageOverrideGuard:
    def test_subclass_on_message_override_is_honoured_on_delivery(self, auths):
        """The fused deliver_into must step aside when a subclass customises
        the on_message virtual dispatch point."""
        from repro.core.messages import PoePropose
        from repro.core.replica import PoeReplica
        from repro.workload.transactions import make_no_op_batch

        seen = []

        class ObservingReplica(PoeReplica):
            def on_message(self, sender, message, now_ms):
                seen.append(type(message).__name__)
                super().on_message(sender, message, now_ms)

        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=3)
        replica = ObservingReplica("replica:1", config, auths["replica:1"],
                                   scheme=SchemeKind.MACS)
        batch = make_no_op_batch("b-0", "client:0", 3)
        output = replica.deliver("replica:0",
                                 PoePropose(view=0, sequence=0, batch=batch), 0.0)
        assert seen == ["PoePropose"]
        assert output.actions, "the override must still reach the handler"
