"""Shared fixtures for the test suite.

Also makes the ``src`` layout importable when the package has not been
installed (the evaluation environment is offline, so ``pip install -e .``
may not be available; ``python setup.py develop`` is the documented
fallback).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.crypto.authenticator import make_authenticators
from repro.protocols.base import NodeConfig


REPLICA_IDS_4 = [f"replica:{i}" for i in range(4)]
CLIENT_IDS = ["client:0"]


@pytest.fixture(scope="session")
def authenticators4():
    """Authenticators for a 4-replica, 1-client system (session cached)."""
    return make_authenticators(REPLICA_IDS_4, CLIENT_IDS, seed=b"test-seed-4")


@pytest.fixture()
def config4():
    """A small 4-replica configuration with real execution enabled."""
    return NodeConfig(
        replica_ids=list(REPLICA_IDS_4),
        batch_size=5,
        request_timeout_ms=100.0,
        checkpoint_interval=10,
        execute_operations=True,
        out_of_order=True,
    )
