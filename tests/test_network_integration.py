"""Tests for SimNetwork driving protocol nodes, and the asyncio transport."""

import asyncio

import pytest

from repro.crypto.authenticator import make_authenticators
from repro.crypto.cost import CryptoOp
from repro.core.client import PoeClientPool
from repro.core.replica import PoeReplica
from repro.net.conditions import NetworkConditions
from repro.net.faults import FaultSchedule
from repro.net.network import SimNetwork
from repro.net.simulator import Simulator
from repro.net.transport import AsyncTransport
from repro.protocols.base import Message, NodeConfig, ProtocolNode
from repro.workload.transactions import make_no_op_batch

REPLICAS = [f"replica:{i}" for i in range(4)]


class PingNode(ProtocolNode):
    """Minimal node used to exercise the drivers: replies 'pong' to 'ping'."""

    def __init__(self, node_id, config, authenticator):
        super().__init__(node_id, config, authenticator)
        self.received = []
        self.timer_fired_count = 0

    def on_start(self, now_ms):
        if self.node_id == "replica:0":
            self.set_timer("tick", 5.0)

    def on_message(self, sender, message, now_ms):
        self.received.append((sender, message.type_name, now_ms))
        if message.type_name == "PingMessage":
            self.send(sender, PongMessage())
        self.charge(CryptoOp.MAC_VERIFY)

    def on_timer(self, name, payload, now_ms):
        self.timer_fired_count += 1


class PingMessage(Message):
    pass


class PongMessage(Message):
    pass


def build_ping_network(conditions=None, faults=None):
    config = NodeConfig(replica_ids=list(REPLICAS))
    auths = make_authenticators(REPLICAS, seed=b"net-tests")
    simulator = Simulator()
    network = SimNetwork(simulator, conditions=conditions, faults=faults, trace=True)
    nodes = []
    for rid in REPLICAS:
        node = PingNode(rid, config, auths[rid])
        nodes.append(node)
        network.add_replica(node)
    return simulator, network, nodes


class TestSimNetwork:
    def test_messages_are_delivered_with_latency(self):
        conditions = NetworkConditions(latency_ms=2.0, jitter_ms=0.0,
                                       bandwidth_mbps=None)
        simulator, network, nodes = build_ping_network(conditions)
        network.start_all()
        network.inject("replica:0", "replica:1", PingMessage())
        network.run_until_idle()
        assert nodes[1].received
        _, _, arrival = nodes[1].received[0]
        assert arrival == pytest.approx(2.0, abs=0.1)
        # The pong came back to replica 0.
        assert any(kind == "PongMessage" for _, kind, _ in nodes[0].received)

    def test_timers_fire_through_the_driver(self):
        simulator, network, nodes = build_ping_network()
        network.start_all()
        network.run_until_idle()
        assert nodes[0].timer_fired_count == 1

    def test_crashed_nodes_receive_nothing(self):
        faults = FaultSchedule.single_backup_crash("replica:2", at_ms=0.0)
        simulator, network, nodes = build_ping_network(faults=faults)
        network.start_all()
        network.inject("replica:0", "replica:2", PingMessage())
        network.run_until_idle()
        assert nodes[2].received == []
        assert network.dropped_count >= 1

    def test_crash_mid_run_stops_delivery(self):
        simulator, network, nodes = build_ping_network()
        network.start_all()
        network.crash("replica:1", at_ms=5.0)
        network.inject("replica:0", "replica:1", PingMessage(), delay_ms=10.0)
        network.run_until_idle()
        assert nodes[1].received == []

    def test_cpu_cost_delays_outgoing_messages(self):
        """A busy node's replies leave only after its modelled CPU work."""
        class SlowNode(PingNode):
            def on_message(self, sender, message, now_ms):
                super().on_message(sender, message, now_ms)
                self.add_cpu(50.0)

        config = NodeConfig(replica_ids=list(REPLICAS))
        auths = make_authenticators(REPLICAS, seed=b"net-slow")
        simulator = Simulator()
        network = SimNetwork(simulator,
                             conditions=NetworkConditions(latency_ms=1.0,
                                                          jitter_ms=0.0))
        slow = SlowNode("replica:0", config, auths["replica:0"])
        fast = PingNode("replica:1", config, auths["replica:1"])
        network.add_replica(slow)
        network.add_replica(fast)
        network.start_all()
        network.inject("replica:1", "replica:0", PingMessage())
        network.run_until_idle()
        pongs = [entry for entry in fast.received if entry[1] == "PongMessage"]
        assert pongs
        assert pongs[0][2] >= 50.0

    def test_observer_sees_every_delivery(self):
        simulator, network, nodes = build_ping_network()
        seen = []
        network.add_observer(lambda s, r, m, t: seen.append((s, r, m.type_name)))
        network.start_all()
        network.inject("replica:0", "replica:1", PingMessage())
        network.run_until_idle()
        assert ("replica:0", "replica:1", "PingMessage") in seen

    def test_trace_records_delivered_messages(self):
        simulator, network, nodes = build_ping_network()
        network.start_all()
        network.inject("replica:0", "replica:1", PingMessage())
        network.run_until_idle()
        assert any(record.message.type_name == "PingMessage"
                   for record in network.delivered)


class TestAsyncTransport:
    def test_poe_cluster_runs_on_asyncio(self):
        """The same sans-IO PoE replicas complete batches on a live event loop."""
        async def scenario():
            config = NodeConfig(replica_ids=list(REPLICAS), batch_size=5,
                                request_timeout_ms=2000.0,
                                execute_operations=True)
            auths = make_authenticators(REPLICAS, ["client:0"], seed=b"async")
            transport = AsyncTransport()
            for rid in REPLICAS:
                transport.add_replica(PoeReplica(rid, config, auths[rid]))
            pool = PoeClientPool(
                "client:0", config,
                batch_source=lambda i, now: make_no_op_batch(
                    f"async:batch:{i}", "client:0", 5, created_at_ms=now),
                target_outstanding=2, total_batches=4)
            transport.add_client(pool)
            await transport.start()
            for _ in range(200):
                if pool.is_done():
                    break
                await asyncio.sleep(0.01)
            await transport.stop()
            return pool, [transport.node(rid) for rid in REPLICAS]

        pool, replicas = asyncio.run(scenario())
        assert pool.is_done()
        assert all(replica.executed_batches == 4 for replica in replicas)
        assert len({replica.executor.state_digest() for replica in replicas}) == 1
