"""Tests for the evaluation fabric: metrics, registry, cluster, experiments."""

import pytest

from repro.fabric.cluster import Cluster, ClusterConfig, client_id, replica_id
from repro.fabric.experiments import (
    ExperimentConfig,
    build_cluster,
    run_experiment,
    run_protocol_comparison,
)
from repro.fabric.metrics import (
    MetricsWindow,
    RunResult,
    ThroughputTimeline,
    percentile,
    summarize,
)
from repro.fabric.registry import PROTOCOLS, get_spec, protocol_names
from repro.fabric.timeline import run_view_change_timeline
from repro.fabric.upper_bound import run_upper_bound
from repro.workload.clients import CompletionRecord


def record(batch_id, completed_at, submitted_at=0.0, num_txns=10):
    return CompletionRecord(batch_id=batch_id, num_txns=num_txns,
                            submitted_at_ms=submitted_at,
                            completed_at_ms=completed_at, view=0, sequence=0)


class TestMetrics:
    def test_throughput_is_txns_over_window(self):
        records = [record(f"b{i}", completed_at=100.0 + i * 100) for i in range(10)]
        window = MetricsWindow(start_ms=0.0, end_ms=1000.0)
        result = summarize("PoE", 4, records, window=window)
        assert result.completed_txns == 100
        assert result.throughput_txn_per_s == pytest.approx(100.0)

    def test_warmup_records_excluded(self):
        records = [record("warm", completed_at=50.0),
                   record("measured", completed_at=500.0)]
        window = MetricsWindow(start_ms=100.0, end_ms=1000.0)
        result = summarize("PoE", 4, records, window=window)
        assert result.completed_batches == 1

    def test_latency_statistics(self):
        records = [record(f"b{i}", completed_at=10.0 * (i + 1), submitted_at=0.0)
                   for i in range(10)]
        result = summarize("PoE", 4, records)
        assert result.avg_latency_ms == pytest.approx(55.0)
        assert result.p50_latency_ms == pytest.approx(50.0)
        assert result.p99_latency_ms == pytest.approx(100.0)

    def test_empty_run_is_all_zero(self):
        result = summarize("PoE", 4, [])
        assert result.throughput_txn_per_s == 0.0
        assert result.completed_txns == 0

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile([], 0.5) == 0.0

    def test_row_flattens_metadata(self):
        result = RunResult(protocol="PoE", n=4, throughput_txn_per_s=1.0,
                           avg_latency_ms=2.0, p50_latency_ms=2.0,
                           p99_latency_ms=3.0, completed_txns=10,
                           completed_batches=1, duration_ms=100.0,
                           metadata={"batch_size": 100})
        row = result.row()
        assert row["protocol"] == "PoE"
        assert row["batch_size"] == 100

    def test_timeline_buckets_transactions_per_second(self):
        records = [record("a", completed_at=500.0),
                   record("b", completed_at=700.0),
                   record("c", completed_at=1500.0)]
        timeline = ThroughputTimeline.from_completions(records, bucket_ms=1000.0,
                                                       end_ms=2000.0)
        assert len(timeline.buckets) == 2
        assert timeline.buckets[0] == pytest.approx(20.0)
        assert timeline.buckets[1] == pytest.approx(10.0)

    def test_timeline_series_shape(self):
        timeline = ThroughputTimeline.from_completions(
            [record("a", completed_at=100.0)], bucket_ms=500.0, end_ms=1000.0)
        series = timeline.series()
        assert series[0]["time_s"] == pytest.approx(0.5)
        assert "throughput_txn_per_s" in series[0]


class TestRegistry:
    def test_all_paper_protocols_registered(self):
        for key in ["poe", "pbft", "zyzzyva", "sbft", "hotstuff"]:
            assert key in PROTOCOLS

    def test_protocol_names_order_matches_paper(self):
        assert protocol_names() == ["poe", "pbft", "sbft", "hotstuff", "zyzzyva"]

    def test_lookup_is_case_insensitive(self):
        assert get_spec("PoE").name == "PoE"

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            get_spec("raft")

    def test_protocol_info_matches_figure_1(self):
        """The static metadata regenerates the paper's Figure 1 rows."""
        assert get_spec("poe").info.phases == 3
        assert get_spec("pbft").info.messages == "O(n + 2n^2)"
        assert get_spec("zyzzyva").info.resilience == "0"
        assert get_spec("sbft").info.requirements == "Twin paths"
        assert get_spec("hotstuff").info.requirements == "Sequential Consensuses"


class TestCluster:
    def test_identifiers(self):
        assert replica_id(3) == "replica:3"
        assert client_id(0) == "client:0"

    def test_cluster_builds_requested_topology(self):
        config = ClusterConfig(protocol="poe", num_replicas=7, num_clients=2,
                               total_batches=1)
        cluster = Cluster(config)
        assert len(cluster.replicas) == 7
        assert len(cluster.pools) == 2
        assert cluster.node_config.f == 2

    def test_run_until_done_completes_all_pools(self):
        config = ClusterConfig(protocol="poe", num_replicas=4, batch_size=10,
                               total_batches=5, client_outstanding=2, seed=21)
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=60_000)
        assert all(pool.is_done() for pool in cluster.pools)
        result = cluster.result(warmup_fraction=0.0)
        assert result.completed_batches == 5
        assert result.completed_txns == 50

    def test_result_metadata_reports_configuration(self):
        config = ClusterConfig(protocol="pbft", num_replicas=4, batch_size=10,
                               total_batches=3, seed=22)
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=60_000)
        result = cluster.result(metadata={"note": "test"})
        assert result.protocol == "PBFT"
        assert result.metadata["batch_size"] == 10
        assert result.metadata["note"] == "test"


class TestExperiments:
    def test_experiment_config_description(self):
        config = ExperimentConfig(protocol="poe", num_replicas=16,
                                  single_backup_failure=True, zero_payload=True)
        text = config.describe()
        assert "poe" in text and "zero payload" in text and "crashed" in text

    def test_single_backup_failure_crashes_exactly_one_backup(self):
        config = ExperimentConfig(protocol="poe", num_replicas=4,
                                  single_backup_failure=True, num_batches=5)
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=60_000)
        crashed = [replica for replica in cluster.replicas if replica.crashed]
        assert len(crashed) == 1
        assert crashed[0].node_id == replica_id(3)
        assert all(pool.is_done() for pool in cluster.pools)

    def test_out_of_order_disabled_uses_closed_loop_clients(self):
        config = ExperimentConfig(protocol="poe", num_replicas=4,
                                  out_of_order=False, num_batches=5)
        cluster = build_cluster(config)
        assert cluster.pools[0].target_outstanding == 1
        hotstuff = build_cluster(ExperimentConfig(protocol="hotstuff",
                                                  num_replicas=4,
                                                  out_of_order=False,
                                                  num_batches=5))
        assert hotstuff.pools[0].target_outstanding == 4

    def test_run_experiment_produces_result(self):
        result = run_experiment(ExperimentConfig(protocol="poe", num_replicas=4,
                                                 num_batches=20, batch_size=20))
        assert result.protocol == "PoE"
        assert result.completed_txns > 0
        assert result.throughput_txn_per_s > 0

    def test_protocol_comparison_shapes_under_failure(self):
        """The paper's headline: with one crashed backup PoE beats PBFT, and
        Zyzzyva collapses."""
        base = ExperimentConfig(num_replicas=4, num_batches=25, batch_size=50,
                                single_backup_failure=True,
                                request_timeout_ms=200.0)
        results = run_protocol_comparison(base, protocols=["poe", "pbft", "zyzzyva"])
        poe = results["poe"].throughput_txn_per_s
        pbft = results["pbft"].throughput_txn_per_s
        zyzzyva = results["zyzzyva"].throughput_txn_per_s
        assert poe > pbft
        assert pbft > zyzzyva * 2

    def test_zero_payload_shrinks_proposals(self):
        config = ExperimentConfig(protocol="poe", num_replicas=4, num_batches=5,
                                  zero_payload=True)
        cluster = build_cluster(config)
        assert cluster.node_config.zero_payload
        assert cluster.node_config.proposal_size_bytes(100) == 250


class TestUpperBound:
    def test_no_execution_is_at_least_as_fast_as_execution(self):
        no_exec = run_upper_bound(execute=False, num_batches=100, batch_size=50)
        with_exec = run_upper_bound(execute=True, num_batches=100, batch_size=50)
        assert no_exec.throughput_txn_per_s >= with_exec.throughput_txn_per_s
        assert with_exec.throughput_txn_per_s > 0

    def test_upper_bound_exceeds_consensus_throughput(self):
        """Figure 7's point: the fabric without consensus is faster than any
        consensus protocol running on it."""
        bound = run_upper_bound(execute=True, num_batches=100, batch_size=50)
        poe = run_experiment(ExperimentConfig(protocol="poe", num_replicas=4,
                                              num_batches=25, batch_size=50))
        assert bound.throughput_txn_per_s > poe.throughput_txn_per_s


class TestViewChangeTimeline:
    def test_timeline_shows_dip_and_recovery(self):
        timeline = run_view_change_timeline(
            protocol="poe", num_replicas=4, batch_size=20,
            crash_at_ms=500.0, duration_ms=2500.0, request_timeout_ms=200.0,
            bucket_ms=250.0, client_outstanding=4)
        buckets = timeline.timeline.buckets
        assert timeline.view_changes_completed >= 1
        assert timeline.new_view >= 1
        before = buckets[0]
        during = min(buckets[2:6])
        after = buckets[-1]
        assert before > 0
        assert during < before * 0.5
        assert after > before * 0.5
