"""Tests for PoE's normal case: speculative execution via PROPOSE/SUPPORT/CERTIFY."""

import pytest

from repro.core.client import PoeClientPool
from repro.core.messages import PoeCertify, PoePropose, PoeSupport
from repro.core.replica import PoeReplica
from repro.crypto.authenticator import SchemeKind, make_authenticators
from repro.fabric.cluster import Cluster, ClusterConfig
from repro.protocols.base import NodeConfig
from repro.protocols.client_messages import ClientReplyMessage, ClientRequestMessage
from repro.workload.transactions import make_no_op_batch
from repro.workload.ycsb import YcsbConfig

from tests.helpers import SyncRouter

REPLICAS = [f"replica:{i}" for i in range(4)]


def build_poe_system(scheme=SchemeKind.THRESHOLD, batch_size=5, out_of_order=True,
                     total_batches=4, execute=True):
    """Wire four PoE replicas and one client pool through a SyncRouter."""
    config = NodeConfig(
        replica_ids=list(REPLICAS),
        batch_size=batch_size,
        request_timeout_ms=1000.0,
        checkpoint_interval=100,
        execute_operations=execute,
        out_of_order=out_of_order,
    )
    auths = make_authenticators(REPLICAS, ["client:0"], seed=b"poe-tests")
    router = SyncRouter()
    replicas = []
    for rid in REPLICAS:
        replica = PoeReplica(rid, config, auths[rid], scheme=scheme)
        replicas.append(replica)
        router.add_replica(replica)
    pool = PoeClientPool(
        "client:0", config,
        batch_source=lambda index, now: make_no_op_batch(
            f"client:0:batch:{index}", "client:0", batch_size, created_at_ms=now),
        target_outstanding=2,
        total_batches=total_batches,
    )
    router.add_client(pool)
    return router, replicas, pool, config


class TestPoeNormalCaseThreshold:
    def test_all_batches_complete_for_the_client(self):
        router, replicas, pool, _ = build_poe_system()
        router.start_all()
        router.flush()
        assert pool.is_done()
        assert pool.completed_batches == 4

    def test_all_replicas_execute_identically(self):
        router, replicas, pool, _ = build_poe_system()
        router.start_all()
        router.flush()
        heads = {replica.blockchain.head.block_hash for replica in replicas}
        digests = {replica.executor.state_digest() for replica in replicas}
        assert len(heads) == 1
        assert len(digests) == 1
        assert all(replica.executed_batches == 4 for replica in replicas)

    def test_blockchains_are_valid(self):
        router, replicas, pool, _ = build_poe_system()
        router.start_all()
        router.flush()
        assert all(replica.blockchain.verify_chain() for replica in replicas)
        assert all(len(replica.blockchain) == 4 for replica in replicas)

    def test_message_flow_is_linear(self):
        """TS mode: SUPPORT goes only to the primary, never all-to-all."""
        router, replicas, pool, _ = build_poe_system(total_batches=1)
        router.start_all()
        router.flush()
        supports = [(s, r) for (s, r, m) in router.delivered
                    if isinstance(m, PoeSupport)]
        assert supports, "expected SUPPORT messages"
        assert all(receiver == "replica:0" for _, receiver in supports)
        certifies = [m for (_, _, m) in router.delivered if isinstance(m, PoeCertify)]
        assert len(certifies) == 3  # broadcast from the primary to 3 backups

    def test_replies_are_marked_speculative(self):
        router, replicas, pool, _ = build_poe_system(total_batches=1)
        router.start_all()
        router.flush()
        replies = [m for (_, _, m) in router.delivered
                   if isinstance(m, ClientReplyMessage)]
        assert replies
        assert all(reply.speculative for reply in replies)

    def test_client_needs_nf_matching_replies(self):
        """Fewer than nf matching INFORMs must not complete the request."""
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=1)
        pool = PoeClientPool("client:0", config, total_batches=1,
                             target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        reply = ClientReplyMessage(batch_id=batch_id, view=0, sequence=0,
                                   result_digest=b"r", replica_id="replica:1")
        pool.deliver("replica:1", reply, 1.0)
        pool.deliver("replica:2",
                     ClientReplyMessage(batch_id=batch_id, view=0, sequence=0,
                                        result_digest=b"r", replica_id="replica:2"),
                     2.0)
        assert pool.completed_batches == 0
        pool.deliver("replica:3",
                     ClientReplyMessage(batch_id=batch_id, view=0, sequence=0,
                                        result_digest=b"r", replica_id="replica:3"),
                     3.0)
        assert pool.completed_batches == 1

    def test_mismatching_replies_do_not_complete(self):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=1)
        pool = PoeClientPool("client:0", config, total_batches=1,
                             target_outstanding=1)
        pool.start(0.0)
        batch_id = list(pool._pending)[0]
        for i, digest_value in enumerate([b"a", b"b", b"c"]):
            pool.deliver(f"replica:{i+1}",
                         ClientReplyMessage(batch_id=batch_id, view=0, sequence=0,
                                            result_digest=digest_value,
                                            replica_id=f"replica:{i+1}"),
                         float(i))
        assert pool.completed_batches == 0

    def test_duplicate_request_gets_cached_reply(self):
        router, replicas, pool, config = build_poe_system(total_batches=1)
        router.start_all()
        router.flush()
        primary = replicas[0]
        batch = pool.completions[0]
        request = ClientRequestMessage(
            batch=make_no_op_batch(batch.batch_id, "client:0", 5),
            reply_to="client:0")
        output = primary.deliver("client:0", request, 100.0)
        sends = output.sends()
        assert len(sends) == 1
        assert isinstance(sends[0].message, ClientReplyMessage)
        assert sends[0].message.batch_id == batch.batch_id


class TestPoeNormalCaseMacs:
    def test_mac_mode_completes_and_matches_threshold_mode(self):
        router, replicas, pool, _ = build_poe_system(scheme=SchemeKind.MACS)
        router.start_all()
        router.flush()
        assert pool.is_done()
        assert all(replica.executed_batches == 4 for replica in replicas)
        assert len({replica.executor.state_digest() for replica in replicas}) == 1

    def test_mac_mode_support_is_all_to_all(self):
        router, replicas, pool, _ = build_poe_system(scheme=SchemeKind.MACS,
                                                     total_batches=1)
        router.start_all()
        router.flush()
        supports = [(s, r) for (s, r, m) in router.delivered
                    if isinstance(m, PoeSupport)]
        receivers = {receiver for _, receiver in supports}
        assert len(receivers) == 4  # every replica receives SUPPORT messages
        certifies = [m for (_, _, m) in router.delivered if isinstance(m, PoeCertify)]
        assert certifies == []  # MAC mode has no CERTIFY phase

    def test_scheme_auto_selection_follows_paper_guidance(self):
        small = NodeConfig(replica_ids=[f"r{i}" for i in range(4)])
        large = NodeConfig(replica_ids=[f"r{i}" for i in range(32)])
        auths_small = make_authenticators(small.replica_ids, seed=b"auto-small")
        auths_large = make_authenticators(large.replica_ids, seed=b"auto-large")
        assert PoeReplica("r0", small, auths_small["r0"]).scheme is SchemeKind.MACS
        assert PoeReplica("r0", large, auths_large["r0"]).scheme is SchemeKind.THRESHOLD


class TestPoeOutOfOrder:
    def _primary_with_requests(self, out_of_order):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            out_of_order=out_of_order, execute_operations=False)
        auths = make_authenticators(REPLICAS, ["client:0"], seed=b"ooo")
        primary = PoeReplica("replica:0", config, auths["replica:0"])
        outputs = []
        for i in range(3):
            request = ClientRequestMessage(
                batch=make_no_op_batch(f"b{i}", "client:0", 2), reply_to="client:0")
            outputs.append(primary.deliver("client:0", request, float(i)))
        return primary, outputs

    def test_out_of_order_primary_pipelines_proposals(self):
        primary, outputs = self._primary_with_requests(out_of_order=True)
        proposals = [a for out in outputs for a in out.broadcasts()
                     if isinstance(a.message, PoePropose)]
        assert len(proposals) == 3
        assert [p.message.sequence for p in proposals] == [0, 1, 2]

    def test_sequential_primary_waits_for_execution(self):
        primary, outputs = self._primary_with_requests(out_of_order=False)
        proposals = [a for out in outputs for a in out.broadcasts()
                     if isinstance(a.message, PoePropose)]
        assert len(proposals) == 1
        assert len(primary._batch_queue) == 2


class TestPoeByzantinePrimary:
    def test_equivocation_cannot_certify_two_batches_for_same_slot(self):
        """Proposition 2: at most one batch view-commits per (view, sequence)."""
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            execute_operations=True)
        auths = make_authenticators(REPLICAS, ["client:0"], seed=b"equivocation")
        backups = {rid: PoeReplica(rid, config, auths[rid],
                                   scheme=SchemeKind.THRESHOLD)
                   for rid in REPLICAS[1:]}
        batch_a = make_no_op_batch("batch-A", "client:0", 2)
        batch_b = make_no_op_batch("batch-B", "client:0", 2)
        # The byzantine primary proposes A to replicas 1 and 2, B to replica 3.
        shares = []
        for rid in ["replica:1", "replica:2"]:
            out = backups[rid].deliver(
                "replica:0", PoePropose(view=0, sequence=0, batch=batch_a), 1.0)
            shares.extend(s.message.share for s in out.sends())
        out_b = backups["replica:3"].deliver(
            "replica:0", PoePropose(view=0, sequence=0, batch=batch_b), 1.0)
        shares_b = [s.message.share for s in out_b.sends()]
        # Even with its own share, the primary cannot reach nf = 3 shares for
        # B, so only A can ever be certified.
        primary_auth = auths["replica:0"]
        from repro.core.view_change import proposal_digest
        digest_a = proposal_digest(0, 0, batch_a.digest())
        shares.append(primary_auth.threshold_share(digest_a))
        certificate_a = primary_auth.threshold_aggregate(shares)
        assert primary_auth.threshold_verify(certificate_a, digest_a)
        digest_b = proposal_digest(0, 0, batch_b.digest())
        from repro.crypto.threshold import ThresholdError
        with pytest.raises(ThresholdError):
            primary_auth.threshold_aggregate(
                shares_b + [primary_auth.threshold_share(digest_b)])

    def test_backup_ignores_certificate_for_unsupported_proposal(self):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            execute_operations=True)
        auths = make_authenticators(REPLICAS, ["client:0"], seed=b"certify-check")
        backup = PoeReplica("replica:1", config, auths["replica:1"])
        batch_a = make_no_op_batch("batch-A", "client:0", 2)
        batch_b = make_no_op_batch("batch-B", "client:0", 2)
        backup.deliver("replica:0", PoePropose(view=0, sequence=0, batch=batch_b), 1.0)
        # Build a valid certificate for batch A (which this backup never saw).
        from repro.core.view_change import proposal_digest
        digest_a = proposal_digest(0, 0, batch_a.digest())
        shares = [auths[rid].threshold_share(digest_a)
                  for rid in ["replica:0", "replica:2", "replica:3"]]
        certificate = auths["replica:0"].threshold_aggregate(shares)
        backup.deliver("replica:0",
                       PoeCertify(view=0, sequence=0, proposal_digest=digest_a,
                                  certificate=certificate), 2.0)
        assert backup.executed_batches == 0


class TestPoeClusterIntegration:
    def test_ycsb_cluster_executes_real_transactions(self):
        config = ClusterConfig(
            protocol="poe", num_replicas=4, batch_size=10, num_clients=1,
            client_outstanding=4, total_batches=10, execute_operations=True,
            use_ycsb_payload=True, ycsb=YcsbConfig(num_records=200, seed=3),
            checkpoint_interval=5, seed=3,
        )
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=60_000)
        result = cluster.result()
        assert result.completed_txns == pytest.approx(90, abs=10)
        tables = {replica.store.snapshot_digest() for replica in cluster.replicas}
        assert len(tables) == 1
        assert all(replica.store.applied_transactions == 100
                   for replica in cluster.replicas)

    def test_checkpoints_become_stable(self):
        config = ClusterConfig(
            protocol="poe", num_replicas=4, batch_size=10, total_batches=20,
            client_outstanding=4, checkpoint_interval=5, seed=5,
        )
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=60_000)
        assert all(replica.checkpoints.stable_sequence >= 14
                   for replica in cluster.replicas)
