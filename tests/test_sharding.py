"""Multi-group sharding: cross-shard 2PC, the shard-aware auditor, and
the Byzantine-coordinator scenarios.

The sharded fabric partitions the keyspace across independent consensus
groups (each running one of the single-group protocols) on one
deterministic simulator; cross-shard transactions run two-phase commit
whose prepare/decide records are themselves consensus-committed inside
every touched shard.  These tests pin:

* liveness + safety of the happy path for PoE-MAC and PBFT shards (and
  a mixed deployment), including uniform cross-shard outcomes;
* every sharded fault-matrix scenario across the acceptance seeds;
* the presumed-abort recovery path when the coordinator crashes mid-2PC;
* the revert demo: with the replicas' decide-certificate validation
  knocked out (the guard an equivocating coordinator is held back by),
  the shard-aware auditor still detects the split commit/abort — its own
  validator is bound at import time precisely so it cannot be disabled
  together with the runtime one.
"""

import pytest

from repro.fabric.audit import ShardedSafetyAuditor, audit_sharded_cluster
from repro.fabric.scenarios import (
    SCENARIO_DEFS,
    SCENARIOS,
    SHARDED_MATRIX_PROTOCOLS,
    SHARDED_SCENARIOS,
    ScenarioParams,
    default_matrix_scenarios,
    run_scenario,
)
from repro.fabric.sharding import (
    ShardedCluster,
    ShardedClusterConfig,
    coordinator_id,
)
from repro.net.faults import FaultSchedule

#: The acceptance seeds every sharded matrix cell must pass on.
ACCEPTANCE_SEEDS = (3, 7, 42, 99)


def _run(config: ShardedClusterConfig, max_ms: float = 600_000.0):
    cluster = ShardedCluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=max_ms)
    return cluster


def _assert_uniform_outcomes(cluster: ShardedCluster) -> int:
    """Every completed cross-shard txn decided the same way everywhere."""
    cross = 0
    for pool in cluster.pools:
        for txn, outcomes in pool.xshard_outcomes.items():
            assert len(set(outcomes.values())) == 1, (
                f"{txn} split across shards: {outcomes}")
            cross += 1
    return cross


@pytest.mark.parametrize("protocol", ["poe-mac", "pbft"])
def test_two_shard_2pc_live_and_safe(protocol):
    cluster = _run(ShardedClusterConfig(
        num_shards=2, protocols=protocol, num_replicas=4, batch_size=10,
        total_batches=20, cross_shard_fraction=0.3, seed=7,
    ))
    assert all(pool.is_done() for pool in cluster.pools)
    report = audit_sharded_cluster(cluster)
    assert report.ok, report.summary()
    assert _assert_uniform_outcomes(cluster) > 0, (
        "the workload must actually exercise cross-shard 2PC")


def test_mixed_protocol_shards():
    """A PoE shard and a PBFT shard cooperate through the same 2PC layer:
    the coordinator only sees client-level replies, so shard protocols
    compose freely."""
    cluster = _run(ShardedClusterConfig(
        num_shards=2, protocols=("poe-mac", "pbft"), num_replicas=4,
        batch_size=10, total_batches=15, cross_shard_fraction=0.3, seed=11,
    ))
    assert all(pool.is_done() for pool in cluster.pools)
    report = audit_sharded_cluster(cluster)
    assert report.ok, report.summary()
    assert _assert_uniform_outcomes(cluster) > 0


def test_three_shards_with_coordinator():
    cluster = _run(ShardedClusterConfig(
        num_shards=3, protocols="poe-mac", num_replicas=4, batch_size=10,
        total_batches=12, cross_shard_fraction=0.25, seed=3,
    ))
    assert all(pool.is_done() for pool in cluster.pools)
    assert audit_sharded_cluster(cluster).ok
    # The coordinator journals every decision it certified.
    assert cluster.coordinator is not None
    assert cluster.coordinator.journal


def test_sbft_shards_are_rejected():
    """SBFT's single-reply collector path cannot give the pool the f+1
    matching attestations 2PC certificates are built from."""
    with pytest.raises(ValueError, match="sbft"):
        ShardedCluster(ShardedClusterConfig(num_shards=2, protocols="sbft"))


def test_coordinator_crash_mid_2pc_presumed_abort():
    """Crashing the coordinator right after startup forces every pool
    onto the probe path: unprepared txns are presumed aborted, prepared
    ones are driven to a uniform decision by the pool itself."""
    cluster = _run(ShardedClusterConfig(
        num_shards=2, protocols="poe-mac", num_replicas=4, batch_size=10,
        total_batches=15, cross_shard_fraction=0.4,
        request_timeout_ms=100.0,
        hub_faults=FaultSchedule().add_crash(coordinator_id(), at_ms=3.0),
        seed=42,
    ))
    assert all(pool.is_done() for pool in cluster.pools)
    report = audit_sharded_cluster(cluster)
    assert report.ok, report.summary()
    _assert_uniform_outcomes(cluster)
    assert any(pool.coordinator_suspect for pool in cluster.pools), (
        "pools should have given up on the crashed coordinator")


# ------------------------------------------------------------ matrix cells
@pytest.mark.parametrize("seed", ACCEPTANCE_SEEDS)
@pytest.mark.parametrize("protocol", SHARDED_MATRIX_PROTOCOLS)
def test_sharded_matrix_cells_across_seeds(protocol, seed):
    """Every sharded scenario × shard protocol is live and safe on all
    acceptance seeds (the matrix itself runs one seed; this is the sweep
    behind the recorded expectations)."""
    for scenario in SHARDED_SCENARIOS:
        outcome = run_scenario(protocol, scenario, ScenarioParams(
            total_batches=12, request_timeout_ms=100.0, seed=seed))
        assert outcome.live, (
            f"{protocol} × {scenario} seed={seed} stalled at "
            f"{outcome.completed_batches}/{outcome.expected_batches}")
        assert outcome.safe, (
            f"{protocol} × {scenario} seed={seed}: "
            + outcome.audit.summary())


def test_shard_primary_crash_triggers_view_change():
    outcome = run_scenario("poe-mac", "xshard-shard-primary-crash",
                           ScenarioParams(total_batches=12,
                                          request_timeout_ms=100.0, seed=7))
    assert outcome.live and outcome.safe
    assert outcome.view_changes >= 1, (
        "the reused primary-crash recipe must force a real view change "
        "inside shard 0")


# ------------------------------------------------------------- revert demo
def test_revert_demo_auditor_catches_split_decision(monkeypatch):
    """Knock out the replicas' decide-certificate validation — the exact
    guard that stops an equivocating coordinator — and the forged abort
    lands on one shard while the other commits.  The shard-aware auditor
    must still catch it: it bound the real validator at import time, so
    reverting the runtime check cannot blind the audit."""
    import repro.workload.xshard as xshard

    monkeypatch.setattr(xshard, "decide_record_valid",
                        lambda batch, layout: True)
    outcome = run_scenario("poe-mac", "xshard-coordinator-equivocate",
                           ScenarioParams(total_batches=12,
                                          request_timeout_ms=100.0, seed=42))
    assert not outcome.safe, (
        "with certificate validation reverted, the equivocating "
        "coordinator must produce an audit violation")
    kinds = {violation.kind for violation in outcome.audit.violations}
    assert kinds & {"cross-shard-atomicity", "forged-decide"}, kinds


def test_equivocating_coordinator_is_contained_by_validation():
    """The unreverted counterpart: with validation in place the same
    behaviour is harmless — the forged abort is rejected, pools recover
    through probes, and the audit stays clean."""
    outcome = run_scenario("poe-mac", "xshard-coordinator-equivocate",
                           ScenarioParams(total_batches=12,
                                          request_timeout_ms=100.0, seed=42))
    assert outcome.live and outcome.safe, outcome.audit.summary()


# ---------------------------------------------------------------- registry
def test_scenario_registry_backs_the_legacy_dict():
    """Satellite guard: the data-driven registry must expose exactly the
    recipes the old literal dict did, in the same order, and the sharded
    registry must extend — not overlap — the single-group names."""
    assert list(SCENARIOS) == [name for name in SCENARIO_DEFS]
    assert all(SCENARIO_DEFS[name].recipe is SCENARIOS[name]
               for name in SCENARIOS)
    assert all(SCENARIO_DEFS[name].description for name in SCENARIO_DEFS)
    assert not set(SCENARIOS) & set(SHARDED_SCENARIOS)
    assert default_matrix_scenarios() == \
        tuple(SCENARIOS) + tuple(SHARDED_SCENARIOS)


def test_sharded_auditor_attaches_like_the_single_group_one():
    config = ShardedClusterConfig(
        num_shards=2, protocols="poe-mac", num_replicas=4, batch_size=10,
        total_batches=10, cross_shard_fraction=0.3, seed=5,
    )
    cluster = ShardedCluster(config)
    auditor = ShardedSafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=600_000.0)
    report = auditor.check()  # raises on violation
    assert report.ok
