"""Tests for the discrete-event simulator and network condition models."""

import pytest

from repro.net.conditions import LinkOverride, NetworkConditions
from repro.net.faults import FaultSchedule
from repro.net.simulator import Simulator


class TestSimulatorScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(10.0, lambda: order.append("c"))
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for label in ["first", "second", "third"]:
            sim.schedule(1.0, lambda label=label: order.append(label))
        sim.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        observed = []
        sim.schedule(7.5, lambda: observed.append(sim.now))
        sim.run_until_idle()
        assert observed == [7.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_run_until_stops_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(100.0, lambda: fired.append("late"))
        sim.run(until_ms=50.0)
        assert fired == ["early"]
        assert sim.now == 50.0

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run_until_idle()
        assert fired == [0, 1, 2, 3]

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        assert sim.processed_events == 5

    def test_cancelled_events_do_not_count_as_processed(self):
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(6)]
        for event in events[::2]:
            event.cancel()
        sim.run_until_idle()
        assert sim.processed_events == 3

    def test_interleaved_cancellations_preserve_order(self):
        sim = Simulator()
        fired = []
        events = {}
        for label in ["a", "b", "c", "d", "e"]:
            events[label] = sim.schedule(2.0, lambda label=label: fired.append(label))
        events["b"].cancel()
        events["d"].cancel()
        sim.run_until_idle()
        assert fired == ["a", "c", "e"]

    def test_step_skips_cancelled_head(self):
        sim = Simulator()
        fired = []
        head = sim.schedule(1.0, lambda: fired.append("head"))
        sim.schedule(2.0, lambda: fired.append("tail"))
        head.cancel()
        assert sim.step() is True
        assert fired == ["tail"]
        assert sim.step() is False

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        event.cancel()
        sim.schedule(1.0, lambda: fired.append("y"))
        sim.run_until_idle()
        assert fired == ["y"]
        assert event.cancelled

    def test_schedule_at_in_the_past_clamps_to_now(self):
        sim = Simulator()
        observed = []
        sim.schedule(10.0, lambda: None)
        sim.run_until_idle()
        assert sim.now == 10.0
        sim.schedule_at(3.0, lambda: observed.append(sim.now))
        sim.run_until_idle()
        # The late event fires immediately at the current clock; time
        # never moves backwards.
        assert observed == [10.0]
        assert sim.now == 10.0

    def test_max_events_ignores_cancelled_heads(self):
        sim = Simulator()
        fired = []
        cancelled = [sim.schedule(1.0, lambda: fired.append("dead"))
                     for _ in range(3)]
        for event in cancelled:
            event.cancel()
        for label in ["a", "b", "c"]:
            sim.schedule(2.0, lambda label=label: fired.append(label))
        sim.run(max_events=2)
        # The three cancelled heads are discarded for free; exactly two
        # live events consume the budget and one stays pending.
        assert fired == ["a", "b"]
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_run_until_ms_with_all_heads_cancelled(self):
        sim = Simulator()
        event = sim.schedule(5.0, lambda: None)
        event.cancel()
        sim.run(until_ms=50.0)
        assert sim.now == 50.0
        assert sim.processed_events == 0


class TestSimulatorCpuAccounting:
    def test_cpu_work_is_serialised_per_node(self):
        sim = Simulator()
        first_done = sim.charge_cpu("node-a", 10.0)
        second_done = sim.charge_cpu("node-a", 5.0)
        assert first_done == 10.0
        assert second_done == 15.0

    def test_cpu_accounts_are_independent_between_nodes(self):
        sim = Simulator()
        sim.charge_cpu("node-a", 10.0)
        assert sim.charge_cpu("node-b", 5.0) == 5.0

    def test_reset_cpu_clears_backlog(self):
        sim = Simulator()
        sim.charge_cpu("node-a", 10.0)
        sim.reset_cpu("node-a")
        assert sim.charge_cpu("node-a", 1.0) == 1.0

    def test_charge_cpu_back_to_back_after_time_advance(self):
        sim = Simulator()
        sim.charge_cpu("node-a", 4.0)
        sim.schedule(10.0, lambda: None)
        sim.run_until_idle()
        # The backlog from t=0 expired before t=10, so new work starts now.
        assert sim.charge_cpu("node-a", 2.0) == 12.0
        # ... and the follow-up work queues behind it.
        assert sim.charge_cpu("node-a", 3.0) == 15.0
        assert sim.cpu_free_at("node-a") == 15.0

    def test_charge_cpu_zero_cost_keeps_clock(self):
        sim = Simulator()
        assert sim.charge_cpu("node-a", 0.0) == 0.0
        assert sim.charge_cpu("node-a", -5.0) == 0.0

    def test_timers_belong_to_owner(self):
        sim = Simulator()
        fired = []
        timer = sim.set_timer("node-a", "t", 2.0, lambda: fired.append("fired"))
        assert timer.owner == "node-a"
        assert timer.active
        sim.run_until_idle()
        assert fired == ["fired"]

    def test_cancelled_timer_reports_inactive(self):
        sim = Simulator()
        timer = sim.set_timer("node-a", "t", 2.0, lambda: None)
        timer.cancel()
        assert not timer.active
        sim.run_until_idle()
        assert sim.processed_events == 0


class TestNetworkConditions:
    def test_delay_includes_latency(self):
        conditions = NetworkConditions(latency_ms=5.0, jitter_ms=0.0,
                                       bandwidth_mbps=None)
        delay = conditions.sample_delay_ms("a", "b", 1000)
        assert delay == pytest.approx(5.0)

    def test_serialization_delay_scales_with_size(self):
        conditions = NetworkConditions(latency_ms=0.0, jitter_ms=0.0,
                                       bandwidth_mbps=8.0)  # 1000 bytes/ms
        small = conditions.sample_delay_ms("a", "b", 1_000)
        large = conditions.sample_delay_ms("a", "b", 10_000)
        assert large > small
        assert large == pytest.approx(10.0)

    def test_local_delivery_uses_local_delay(self):
        conditions = NetworkConditions(latency_ms=5.0, local_delivery_ms=0.01)
        assert conditions.sample_delay_ms("a", "a", 100) == pytest.approx(0.01)

    def test_loss_rate_drops_messages(self):
        conditions = NetworkConditions(latency_ms=1.0, jitter_ms=0.0, loss_rate=1.0)
        assert conditions.sample_delay_ms("a", "b", 100) is None

    def test_link_override_changes_latency(self):
        conditions = NetworkConditions(latency_ms=1.0, jitter_ms=0.0,
                                       bandwidth_mbps=None)
        conditions.override_link("a", "b", LinkOverride(latency_ms=50.0))
        assert conditions.sample_delay_ms("a", "b", 100) == pytest.approx(50.0)
        assert conditions.sample_delay_ms("b", "a", 100) == pytest.approx(1.0)

    def test_uniform_delay_preset_has_no_jitter(self):
        conditions = NetworkConditions.uniform_delay(20.0)
        samples = {conditions.sample_delay_ms("a", "b", 10_000) for _ in range(10)}
        assert samples == {20.0}


class TestFaultSchedule:
    def test_crash_applies_from_start_time(self):
        faults = FaultSchedule.single_backup_crash("replica:3", at_ms=100.0)
        assert not faults.crashed_at("replica:3", 50.0)
        assert faults.crashed_at("replica:3", 150.0)

    def test_crash_with_recovery_window(self):
        faults = FaultSchedule().add_crash("replica:1", at_ms=10.0, until_ms=20.0)
        assert faults.crashed_at("replica:1", 15.0)
        assert not faults.crashed_at("replica:1", 25.0)

    def test_crashed_node_drops_messages_both_directions(self):
        faults = FaultSchedule.single_backup_crash("replica:2", at_ms=0.0)
        assert faults.drops("replica:2", "replica:0", 1.0)
        assert faults.drops("replica:0", "replica:2", 1.0)
        assert not faults.drops("replica:0", "replica:1", 1.0)

    def test_dark_replica_drops_only_selected_links(self):
        faults = FaultSchedule().add_dark_replicas("replica:0", ["replica:1"])
        assert faults.drops("replica:0", "replica:1", 5.0)
        assert not faults.drops("replica:0", "replica:2", 5.0)
        assert not faults.drops("replica:1", "replica:0", 5.0)

    def test_partition_separates_groups_symmetrically(self):
        faults = FaultSchedule().add_partition(["a", "b"], ["c"], at_ms=0.0)
        assert faults.drops("a", "c", 1.0)
        assert faults.drops("c", "b", 1.0)
        assert not faults.drops("a", "b", 1.0)

    def test_partition_window_expires(self):
        faults = FaultSchedule().add_partition(["a"], ["b"], at_ms=0.0, until_ms=10.0)
        assert faults.drops("a", "b", 5.0)
        assert not faults.drops("a", "b", 15.0)

    def test_crashed_nodes_listing(self):
        faults = FaultSchedule()
        faults.add_crash("x", at_ms=0.0)
        faults.add_crash("y", at_ms=100.0)
        assert faults.crashed_nodes(50.0) == {"x"}
        assert faults.crashed_nodes(150.0) == {"x", "y"}
