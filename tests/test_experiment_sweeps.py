"""Tests for the experiment sweep helpers and auxiliary fabric pieces."""


from repro.crypto.authenticator import make_authenticators
from repro.fabric.experiments import (
    ExperimentConfig,
    batching_sweep,
    scaling_sweep,
)
from repro.fabric.registry import HotStuffClientPool, get_spec
from repro.fabric.upper_bound import EchoReplica
from repro.protocols.base import NodeConfig
from repro.protocols.client_messages import ClientReplyMessage, ClientRequestMessage
from repro.workload.transactions import make_no_op_batch

REPLICAS = [f"replica:{i}" for i in range(4)]


class TestSweepHelpers:
    def test_scaling_sweep_covers_grid(self):
        base = ExperimentConfig(num_batches=10, batch_size=10)
        results = scaling_sweep(base, replica_counts=[4, 7],
                                protocols=["poe", "pbft"])
        assert len(results) == 4
        assert {result.n for result in results} == {4, 7}
        assert {result.protocol for result in results} == {"PoE", "PBFT"}

    def test_batching_sweep_reports_batch_sizes(self):
        base = ExperimentConfig(num_replicas=4, num_batches=10)
        results = batching_sweep(base, batch_sizes=[5, 20], protocols=["poe"])
        assert [result.metadata["batch_size"] for result in results] == [5, 20]
        # Larger batches carry more transactions through the same number of
        # consensus slots.
        assert results[1].completed_txns > results[0].completed_txns


class TestRegistryVariants:
    def test_poe_variants_share_the_replica_class(self):
        assert get_spec("poe").replica_cls is get_spec("poe-ts").replica_cls
        assert get_spec("poe").replica_cls is get_spec("poe-nospec").replica_cls

    def test_hotstuff_clients_broadcast_with_f_plus_1_quorum(self):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=5)
        pool = HotStuffClientPool("client:0", config, total_batches=1)
        assert pool.broadcast_requests
        assert pool.completion_quorum == config.f + 1
        output = pool.start(0.0)
        assert len(output.broadcasts()) == 1


class TestEchoReplica:
    def _echo(self, execute, worker_threads=2):
        config = NodeConfig(replica_ids=["replica:0"], batch_size=10)
        auths = make_authenticators(["replica:0"], ["client:0"], seed=b"echo")
        return EchoReplica("replica:0", config, auths["replica:0"],
                           execute=execute, worker_threads=worker_threads)

    def test_echo_replies_to_the_client(self):
        replica = self._echo(execute=True)
        batch = make_no_op_batch("b0", "client:0", 10)
        output = replica.deliver(
            "client:0", ClientRequestMessage(batch=batch, reply_to="client:0"), 1.0)
        replies = [send.message for send in output.sends()]
        assert len(replies) == 1
        assert isinstance(replies[0], ClientReplyMessage)
        assert replica.answered_batches == 1

    def test_execution_costs_more_cpu_than_echoing(self):
        executing = self._echo(execute=True)
        echoing = self._echo(execute=False)
        batch = make_no_op_batch("b0", "client:0", 100)
        request = ClientRequestMessage(batch=batch, reply_to="client:0")
        cpu_exec = executing.deliver("client:0", request, 1.0).cpu_ms
        cpu_echo = echoing.deliver("client:0", request, 1.0).cpu_ms
        assert cpu_exec > cpu_echo

    def test_more_worker_threads_reduce_charged_cpu(self):
        single = self._echo(execute=True, worker_threads=1)
        dual = self._echo(execute=True, worker_threads=2)
        batch = make_no_op_batch("b0", "client:0", 100)
        request = ClientRequestMessage(batch=batch, reply_to="client:0")
        assert (dual.deliver("client:0", request, 1.0).cpu_ms
                < single.deliver("client:0", request, 1.0).cpu_ms)

    def test_non_client_messages_are_ignored(self):
        replica = self._echo(execute=True)
        output = replica.deliver("replica:0", ClientReplyMessage(batch_id="x"), 1.0)
        assert output.sends() == []
