"""Tests for PoE's view-change: detection, new-view selection, rollback, recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import CertifiedEntry, PoeNewView, PoeViewChangeRequest
from repro.core.replica import PoeReplica
from repro.core.view_change import (
    longest_consecutive_prefix,
    proposal_digest,
    validate_view_change_request,
)
from repro.crypto.authenticator import SchemeKind, make_authenticators
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.net.faults import FaultSchedule
from repro.protocols.base import NodeConfig
from repro.workload.transactions import make_no_op_batch

REPLICAS = [f"replica:{i}" for i in range(4)]


def make_entry(auths, sequence, view=0, label=None):
    batch = make_no_op_batch(label or f"batch-{sequence}", "client:0", 2)
    digest_h = proposal_digest(sequence, view, batch.digest())
    shares = [auths[rid].threshold_share(digest_h) for rid in REPLICAS[:3]]
    certificate = auths[REPLICAS[0]].threshold_aggregate(shares)
    return CertifiedEntry(sequence=sequence, view=view, proposal_digest=digest_h,
                          batch=batch, certificate=certificate)


@pytest.fixture(scope="module")
def auths():
    return make_authenticators(REPLICAS, ["client:0"], seed=b"view-change-tests")


class TestViewChangeRequestValidation:
    def test_valid_request_accepted(self, auths):
        entries = tuple(make_entry(auths, seq) for seq in range(3))
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=entries)
        assert validate_view_change_request(request, auths["replica:0"], 0)

    def test_wrong_view_rejected(self, auths):
        request = PoeViewChangeRequest(view=2, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=())
        assert not validate_view_change_request(request, auths["replica:0"], 0)

    def test_non_consecutive_entries_rejected(self, auths):
        entries = (make_entry(auths, 0), make_entry(auths, 2))
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=entries)
        assert not validate_view_change_request(request, auths["replica:0"], 0)

    def test_entries_must_start_after_checkpoint(self, auths):
        entries = (make_entry(auths, 5),)
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=3, executed=entries)
        assert not validate_view_change_request(request, auths["replica:0"], 0)

    def test_forged_certificate_rejected(self, auths):
        good = make_entry(auths, 0)
        other = make_entry(auths, 0, label="other-batch")
        forged = CertifiedEntry(sequence=0, view=0,
                                proposal_digest=good.proposal_digest,
                                batch=good.batch, certificate=other.certificate)
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=(forged,))
        assert not validate_view_change_request(request, auths["replica:0"], 0)

    def test_certificate_stripped_entry_rejected_in_threshold_mode(self, auths):
        """Regression: threshold-mode validation used to *skip* entries whose
        certificate was ``None`` instead of rejecting them, so a Byzantine
        replica could strip the certificates off fabricated entries and
        have a forged history admitted into new-view selection."""
        good = make_entry(auths, 0)
        stripped = CertifiedEntry(sequence=0, view=0,
                                  proposal_digest=good.proposal_digest,
                                  batch=good.batch, certificate=None)
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=(stripped,))
        assert not validate_view_change_request(request, auths["replica:0"], 0,
                                                verify_certificates=True)

    def test_certificate_check_can_be_skipped_for_mac_mode(self, auths):
        good = make_entry(auths, 0)
        forged = CertifiedEntry(sequence=0, view=0,
                                proposal_digest=good.proposal_digest,
                                batch=good.batch, certificate=None)
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=(forged,))
        assert validate_view_change_request(request, auths["replica:0"], 0,
                                            verify_certificates=False)


class TestNewViewSelection:
    def test_longest_prefix_from_single_request(self, auths):
        entries = tuple(make_entry(auths, seq) for seq in range(3))
        request = PoeViewChangeRequest(view=0, replica_id="r", stable_checkpoint=-1,
                                       executed=entries)
        prefix, kmax = longest_consecutive_prefix([request])
        assert kmax == 2
        assert sorted(prefix) == [0, 1, 2]

    def test_union_extends_shorter_requests(self, auths):
        short = PoeViewChangeRequest(
            view=0, replica_id="a", stable_checkpoint=-1,
            executed=tuple(make_entry(auths, seq) for seq in range(2)))
        long = PoeViewChangeRequest(
            view=0, replica_id="b", stable_checkpoint=-1,
            executed=tuple(make_entry(auths, seq) for seq in range(4)))
        prefix, kmax = longest_consecutive_prefix([short, long])
        assert kmax == 3
        assert sorted(prefix) == [0, 1, 2, 3]

    def test_empty_requests_yield_checkpoint(self, auths):
        request = PoeViewChangeRequest(view=0, replica_id="a", stable_checkpoint=7,
                                       executed=())
        prefix, kmax = longest_consecutive_prefix([request])
        assert prefix == {}
        assert kmax == 7

    def test_kmax_is_anchored_at_the_highest_stable_checkpoint(self, auths):
        """Regression: a VC-REQUEST reporting stable_checkpoint=10 with no
        entries must anchor kmax at 10 even when another request carries
        executed entries 0..3 — otherwise the new view would start (and
        roll replicas back) below a stable checkpoint."""
        with_entries = PoeViewChangeRequest(
            view=0, replica_id="a", stable_checkpoint=-1,
            executed=tuple(make_entry(auths, seq) for seq in range(4)))
        checkpointed = PoeViewChangeRequest(view=0, replica_id="b",
                                            stable_checkpoint=10, executed=())
        prefix, kmax = longest_consecutive_prefix([with_entries, checkpointed])
        assert kmax == 10
        # The durable-but-reported entries stay available for lagging
        # replicas; they just cannot pull kmax below the checkpoint.
        assert sorted(prefix) == [0, 1, 2, 3]

    def test_certified_entries_above_the_checkpoint_survive(self, auths):
        """Entries beyond the anchor must extend kmax, not be discarded: a
        request completed by nf replicas after the checkpoint would
        otherwise vanish from the new view (Proposition 5)."""
        lagging = PoeViewChangeRequest(
            view=0, replica_id="a", stable_checkpoint=-1,
            executed=tuple(make_entry(auths, seq) for seq in range(4)))
        ahead = tuple(make_entry(auths, seq) for seq in (11, 12))
        checkpointed = tuple(
            PoeViewChangeRequest(view=0, replica_id=f"replica:{i}",
                                 stable_checkpoint=10, executed=ahead)
            for i in (1, 2)
        )
        prefix, kmax = longest_consecutive_prefix([lagging, *checkpointed])
        assert kmax == 12
        assert prefix[11].batch.batch_id == ahead[0].batch.batch_id
        assert prefix[12].batch.batch_id == ahead[1].batch.batch_id

    def test_checkpoint_anchor_does_not_shrink_longer_prefixes(self, auths):
        """Entries reaching beyond every stable checkpoint stay adopted."""
        with_entries = PoeViewChangeRequest(
            view=0, replica_id="a", stable_checkpoint=-1,
            executed=tuple(make_entry(auths, seq) for seq in range(6)))
        checkpointed = PoeViewChangeRequest(view=0, replica_id="b",
                                            stable_checkpoint=2, executed=())
        prefix, kmax = longest_consecutive_prefix([with_entries, checkpointed])
        assert kmax == 5
        assert sorted(prefix) == [0, 1, 2, 3, 4, 5]

    def test_new_view_never_rolls_back_below_a_stable_checkpoint(self, auths):
        """End-to-end variant: a replica that executed past everyone's
        entries must roll back to the checkpoint anchor, not below it."""
        replica = TestRollback()._replica(auths)
        entries = [make_entry(auths, seq) for seq in range(12)]
        for entry in entries:
            replica.commit_slot(entry.sequence, 0, entry.batch,
                                proof=entry.certificate, now_ms=1.0,
                                speculative=True)
            replica._certified_log[entry.sequence] = entry
        assert replica.last_executed_sequence == 11
        requests = (
            PoeViewChangeRequest(view=0, replica_id="replica:0",
                                 stable_checkpoint=9, executed=()),
            PoeViewChangeRequest(view=0, replica_id="replica:1",
                                 stable_checkpoint=-1,
                                 executed=tuple(entries[:2])),
            PoeViewChangeRequest(view=0, replica_id="replica:2",
                                 stable_checkpoint=-1,
                                 executed=tuple(entries[:2])),
        )
        replica.deliver("replica:1", PoeNewView(new_view=1, requests=requests), 5.0)
        # Anchored at checkpoint 9: rolled back 11 -> 9, never to 1.
        assert replica.last_executed_sequence == 9
        assert replica.rollback_log == [(9, -1)]

    def test_client_completed_request_always_survives(self, auths):
        """Proposition 5: a request executed by nf replicas appears in any
        nf-sized set of view-change requests, so it is never lost."""
        executed_entries = tuple(make_entry(auths, seq) for seq in range(2))
        requests = [
            PoeViewChangeRequest(view=0, replica_id=f"replica:{i}",
                                 stable_checkpoint=-1, executed=executed_entries)
            for i in range(3)  # nf = 3 replicas executed and reported it
        ]
        prefix, kmax = longest_consecutive_prefix(requests)
        assert kmax == 1
        assert prefix[1].batch.batch_id == executed_entries[1].batch.batch_id


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=4))
def test_longest_prefix_property(lengths):
    """Property: kmax equals the longest executed prefix over all requests,
    and the prefix contains exactly the sequences 0..kmax."""
    auths = make_authenticators(REPLICAS, seed=b"prefix-prop")
    requests = []
    for i, length in enumerate(lengths):
        entries = tuple(make_entry(auths, seq) for seq in range(length))
        requests.append(PoeViewChangeRequest(view=0, replica_id=f"r{i}",
                                             stable_checkpoint=-1,
                                             executed=entries))
    prefix, kmax = longest_consecutive_prefix(requests)
    assert kmax == max(lengths) - 1
    assert sorted(prefix) == list(range(max(lengths)))


class TestRollback:
    def _replica(self, auths, rid="replica:3"):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            execute_operations=True)
        return PoeReplica(rid, config, auths[rid], scheme=SchemeKind.THRESHOLD)

    def test_new_view_rolls_back_uncovered_speculation(self, auths):
        """Speculatively executed batches beyond the adopted prefix are reverted."""
        replica = self._replica(auths)
        entries = [make_entry(auths, seq) for seq in range(3)]
        for entry in entries:
            replica.commit_slot(entry.sequence, 0, entry.batch,
                                proof=entry.certificate, now_ms=1.0, speculative=True)
            replica._certified_log[entry.sequence] = entry
        assert replica.executed_batches == 3
        # The new view only covers sequences 0 and 1.
        requests = tuple(
            PoeViewChangeRequest(view=0, replica_id=f"replica:{i}",
                                 stable_checkpoint=-1,
                                 executed=tuple(entries[:2]))
            for i in range(3)
        )
        new_view = PoeNewView(new_view=1, requests=requests)
        replica.deliver("replica:1", new_view, 10.0)
        assert replica.view == 1
        assert replica.last_executed_sequence == 1
        assert replica.rolled_back_batches == 1
        assert replica.blockchain.head.sequence == 1

    def test_new_view_fills_in_missed_executions(self, auths):
        """A replica that missed slots executes them from the NV-PROPOSE."""
        replica = self._replica(auths)
        entries = [make_entry(auths, seq) for seq in range(3)]
        replica.commit_slot(0, 0, entries[0].batch, proof=entries[0].certificate,
                            now_ms=1.0, speculative=True)
        assert replica.executed_batches == 1
        requests = tuple(
            PoeViewChangeRequest(view=0, replica_id=f"replica:{i}",
                                 stable_checkpoint=-1, executed=tuple(entries))
            for i in range(3)
        )
        replica.deliver("replica:1", PoeNewView(new_view=1, requests=requests), 5.0)
        assert replica.last_executed_sequence == 2
        assert replica.executed_batches == 3

    def test_new_view_from_wrong_sender_ignored(self, auths):
        replica = self._replica(auths)
        new_view = PoeNewView(new_view=1, requests=())
        replica.deliver("replica:2", new_view, 1.0)  # primary of view 1 is replica:1
        assert replica.view == 0

    def test_stale_pending_slot_does_not_execute_behind_adopted_prefix(self, auths):
        """Regression: a view-committed-but-unexecuted slot from the old
        view (e.g. selectively certified by a Byzantine primary) must be
        evicted before the adopted prefix executes, or in-order execution
        drains it right behind the prefix and the replica diverges."""
        replica = self._replica(auths)
        entries = [make_entry(auths, seq) for seq in range(2)]
        stale = make_entry(auths, 1, label="stale-view0-batch")
        # Slot 1 view-committed in view 0 but stuck behind the gap at 0.
        replica.commit_slot(stale.sequence, 0, stale.batch,
                            proof=stale.certificate, now_ms=1.0, speculative=True)
        assert replica.last_executed_sequence == -1
        # The new view adopts a different slot-1 batch.
        requests = tuple(
            PoeViewChangeRequest(view=0, replica_id=f"replica:{i}",
                                 stable_checkpoint=-1, executed=tuple(entries))
            for i in range(3)
        )
        replica.deliver("replica:1", PoeNewView(new_view=1, requests=requests), 5.0)
        assert replica.last_executed_sequence == 1
        block = replica.blockchain.block_at(1)
        assert block.payload == entries[1].batch.batch_id
        assert block.payload != stale.batch.batch_id


class TestViewChangeBackoff:
    def _replica(self, auths):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            request_timeout_ms=100.0, execute_operations=True)
        return PoeReplica("replica:3", config, auths["replica:3"],
                          scheme=SchemeKind.THRESHOLD)

    def _vc_timer_delay(self, output):
        timers = [t for t in output.timers() if t.name == "view-change"]
        assert len(timers) == 1
        return timers[0].delay_ms

    def test_retry_timer_doubles_per_failed_view_and_caps(self, auths):
        """Regression: the comment always promised exponential back-off but
        every retry used to re-arm at a flat ``request_timeout_ms * 2``."""
        replica = self._replica(auths)
        # Sustained grounds for suspicion: a forwarded request the primary
        # never serves.  Without grounds a retry stands down instead of
        # escalating (see test_retry_stands_down_once_nothing_is_suspected).
        replica.start_progress_timer("client:0:batch:0", 0.0)
        replica.initiate_view_change(0.0)
        delays = [self._vc_timer_delay(replica._collect())]
        for _ in range(8):
            # The timer fires without the view change completing: the next
            # primary was faulty too.
            output = replica.timer_fired("view-change", replica.view + 1, 0.0)
            delays.append(self._vc_timer_delay(output))
        base = 100.0 * 2
        expected = [base * (2 ** min(i, PoeReplica.VC_BACKOFF_CAP))
                    for i in range(len(delays))]
        assert delays == expected
        assert delays[-1] == delays[-2] == base * 2 ** PoeReplica.VC_BACKOFF_CAP

    def test_retry_stands_down_once_nothing_is_suspected(self, auths):
        """A lone suspecter whose grievances have all been served must
        abort its view change at the retry instead of escalating: nobody
        else will ever join, and unilateral view advances wedge the
        replica out of the quorum's view."""
        replica = self._replica(auths)
        replica.start_progress_timer("client:0:batch:0", 0.0)
        replica.initiate_view_change(0.0)
        replica._collect()
        view_before = replica.view
        # The batch is served (learned executed) before the retry fires.
        replica._batch_sequence["client:0:batch:0"] = (0, 1.0)
        replica.stop_progress_timer("client:0:batch:0")
        output = replica.timer_fired("view-change", replica.view + 1, 50.0)
        assert replica.view == view_before
        assert not replica.view_change_in_progress
        assert replica._vc_failed_attempts == 0
        assert [t for t in output.timers() if t.name == "view-change"] == []

    def test_backoff_resets_after_a_completed_view_change(self, auths):
        replica = self._replica(auths)
        replica.start_progress_timer("client:0:batch:0", 0.0)
        replica.initiate_view_change(0.0)
        replica._collect()
        replica.timer_fired("view-change", replica.view + 1, 0.0)
        assert replica._vc_failed_attempts == 1
        # A successful view change resets the failure streak.
        entries = tuple(make_entry(auths, seq) for seq in range(1))
        requests = tuple(
            PoeViewChangeRequest(view=replica.view, replica_id=f"replica:{i}",
                                 stable_checkpoint=-1, executed=entries)
            for i in range(3)
        )
        new_view = replica.view + 1
        primary = f"replica:{new_view % 4}"
        replica.deliver(primary, PoeNewView(new_view=new_view, requests=requests), 1.0)
        assert replica.view == new_view
        assert replica._vc_failed_attempts == 0


class TestViewChangeIntegration:
    def _run_primary_crash(self, protocol="poe", num_replicas=4):
        # The primary crashes after only a couple of milliseconds, i.e. with
        # most of the client's batches still outstanding.
        config = ClusterConfig(
            protocol=protocol, num_replicas=num_replicas, batch_size=10,
            num_clients=1, client_outstanding=3, total_batches=30,
            request_timeout_ms=100.0, checkpoint_interval=10,
            faults=FaultSchedule.primary_crash(replica_id(0), at_ms=2.0),
            seed=11,
        )
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=120_000)
        return cluster

    def test_primary_crash_triggers_exactly_one_view_change(self):
        cluster = self._run_primary_crash()
        live = [replica for replica in cluster.replicas if not replica.crashed]
        assert all(replica.view == 1 for replica in live)
        assert all(replica.view_changes_completed == 1 for replica in live)

    def test_clients_complete_despite_primary_crash(self):
        cluster = self._run_primary_crash()
        assert all(pool.is_done() for pool in cluster.pools)

    def test_live_replicas_converge_after_view_change(self):
        cluster = self._run_primary_crash()
        live = [replica for replica in cluster.replicas if not replica.crashed]
        executed = {replica.last_executed_sequence for replica in live}
        assert len(executed) == 1
        digests = {replica.executor.state_digest() for replica in live}
        assert len(digests) == 1

    def test_join_rule_brings_all_replicas_into_view_change(self):
        """Replicas that did not time out themselves join after f+1 requests."""
        cluster = self._run_primary_crash(num_replicas=7)
        live = [replica for replica in cluster.replicas if not replica.crashed]
        assert all(replica.view >= 1 for replica in live)
        assert all(pool.is_done() for pool in cluster.pools)


class TestDarkReplicaRecovery:
    def test_dark_replica_catches_up_via_checkpoint_state_transfer(self):
        """A backup kept in the dark by the primary recovers through the
        checkpoint protocol (paper, Example 3 case 2 + Section II-D)."""
        dark = replica_id(3)
        faults = FaultSchedule().add_dark_replicas(replica_id(0), [dark])
        config = ClusterConfig(
            protocol="poe", num_replicas=4, batch_size=10, total_batches=30,
            client_outstanding=4, checkpoint_interval=5,
            faults=faults, seed=13,
        )
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=120_000)
        assert all(pool.is_done() for pool in cluster.pools)
        dark_replica = cluster.network.node(dark)
        others = [replica for replica in cluster.replicas
                  if replica.node_id != dark and not replica.crashed]
        # The dark replica cannot participate in consensus but state transfer
        # brings it to within one checkpoint interval of the rest.
        max_executed = max(replica.last_executed_sequence for replica in others)
        assert dark_replica.last_executed_sequence >= max_executed - config.checkpoint_interval
        assert dark_replica.blockchain.verify_chain()
