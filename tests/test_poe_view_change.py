"""Tests for PoE's view-change: detection, new-view selection, rollback, recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import CertifiedEntry, PoeNewView, PoeViewChangeRequest
from repro.core.replica import PoeReplica
from repro.core.view_change import (
    longest_consecutive_prefix,
    proposal_digest,
    validate_view_change_request,
)
from repro.crypto.authenticator import SchemeKind, make_authenticators
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.net.faults import FaultSchedule
from repro.protocols.base import NodeConfig
from repro.workload.transactions import make_no_op_batch

REPLICAS = [f"replica:{i}" for i in range(4)]


def make_entry(auths, sequence, view=0, label=None):
    batch = make_no_op_batch(label or f"batch-{sequence}", "client:0", 2)
    digest_h = proposal_digest(sequence, view, batch.digest())
    shares = [auths[rid].threshold_share(digest_h) for rid in REPLICAS[:3]]
    certificate = auths[REPLICAS[0]].threshold_aggregate(shares)
    return CertifiedEntry(sequence=sequence, view=view, proposal_digest=digest_h,
                          batch=batch, certificate=certificate)


@pytest.fixture(scope="module")
def auths():
    return make_authenticators(REPLICAS, ["client:0"], seed=b"view-change-tests")


class TestViewChangeRequestValidation:
    def test_valid_request_accepted(self, auths):
        entries = tuple(make_entry(auths, seq) for seq in range(3))
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=entries)
        assert validate_view_change_request(request, auths["replica:0"], 0)

    def test_wrong_view_rejected(self, auths):
        request = PoeViewChangeRequest(view=2, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=())
        assert not validate_view_change_request(request, auths["replica:0"], 0)

    def test_non_consecutive_entries_rejected(self, auths):
        entries = (make_entry(auths, 0), make_entry(auths, 2))
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=entries)
        assert not validate_view_change_request(request, auths["replica:0"], 0)

    def test_entries_must_start_after_checkpoint(self, auths):
        entries = (make_entry(auths, 5),)
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=3, executed=entries)
        assert not validate_view_change_request(request, auths["replica:0"], 0)

    def test_forged_certificate_rejected(self, auths):
        good = make_entry(auths, 0)
        other = make_entry(auths, 0, label="other-batch")
        forged = CertifiedEntry(sequence=0, view=0,
                                proposal_digest=good.proposal_digest,
                                batch=good.batch, certificate=other.certificate)
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=(forged,))
        assert not validate_view_change_request(request, auths["replica:0"], 0)

    def test_certificate_check_can_be_skipped_for_mac_mode(self, auths):
        good = make_entry(auths, 0)
        forged = CertifiedEntry(sequence=0, view=0,
                                proposal_digest=good.proposal_digest,
                                batch=good.batch, certificate=None)
        request = PoeViewChangeRequest(view=0, replica_id="replica:1",
                                       stable_checkpoint=-1, executed=(forged,))
        assert validate_view_change_request(request, auths["replica:0"], 0,
                                            verify_certificates=False)


class TestNewViewSelection:
    def test_longest_prefix_from_single_request(self, auths):
        entries = tuple(make_entry(auths, seq) for seq in range(3))
        request = PoeViewChangeRequest(view=0, replica_id="r", stable_checkpoint=-1,
                                       executed=entries)
        prefix, kmax = longest_consecutive_prefix([request])
        assert kmax == 2
        assert sorted(prefix) == [0, 1, 2]

    def test_union_extends_shorter_requests(self, auths):
        short = PoeViewChangeRequest(
            view=0, replica_id="a", stable_checkpoint=-1,
            executed=tuple(make_entry(auths, seq) for seq in range(2)))
        long = PoeViewChangeRequest(
            view=0, replica_id="b", stable_checkpoint=-1,
            executed=tuple(make_entry(auths, seq) for seq in range(4)))
        prefix, kmax = longest_consecutive_prefix([short, long])
        assert kmax == 3
        assert sorted(prefix) == [0, 1, 2, 3]

    def test_empty_requests_yield_checkpoint(self, auths):
        request = PoeViewChangeRequest(view=0, replica_id="a", stable_checkpoint=7,
                                       executed=())
        prefix, kmax = longest_consecutive_prefix([request])
        assert prefix == {}
        assert kmax == 7

    def test_client_completed_request_always_survives(self, auths):
        """Proposition 5: a request executed by nf replicas appears in any
        nf-sized set of view-change requests, so it is never lost."""
        executed_entries = tuple(make_entry(auths, seq) for seq in range(2))
        requests = [
            PoeViewChangeRequest(view=0, replica_id=f"replica:{i}",
                                 stable_checkpoint=-1, executed=executed_entries)
            for i in range(3)  # nf = 3 replicas executed and reported it
        ]
        prefix, kmax = longest_consecutive_prefix(requests)
        assert kmax == 1
        assert prefix[1].batch.batch_id == executed_entries[1].batch.batch_id


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=4))
def test_longest_prefix_property(lengths):
    """Property: kmax equals the longest executed prefix over all requests,
    and the prefix contains exactly the sequences 0..kmax."""
    auths = make_authenticators(REPLICAS, seed=b"prefix-prop")
    requests = []
    for i, length in enumerate(lengths):
        entries = tuple(make_entry(auths, seq) for seq in range(length))
        requests.append(PoeViewChangeRequest(view=0, replica_id=f"r{i}",
                                             stable_checkpoint=-1,
                                             executed=entries))
    prefix, kmax = longest_consecutive_prefix(requests)
    assert kmax == max(lengths) - 1
    assert sorted(prefix) == list(range(max(lengths)))


class TestRollback:
    def _replica(self, auths, rid="replica:3"):
        config = NodeConfig(replica_ids=list(REPLICAS), batch_size=2,
                            execute_operations=True)
        return PoeReplica(rid, config, auths[rid], scheme=SchemeKind.THRESHOLD)

    def test_new_view_rolls_back_uncovered_speculation(self, auths):
        """Speculatively executed batches beyond the adopted prefix are reverted."""
        replica = self._replica(auths)
        entries = [make_entry(auths, seq) for seq in range(3)]
        for entry in entries:
            replica.commit_slot(entry.sequence, 0, entry.batch,
                                proof=entry.certificate, now_ms=1.0, speculative=True)
            replica._certified_log[entry.sequence] = entry
        assert replica.executed_batches == 3
        # The new view only covers sequences 0 and 1.
        requests = tuple(
            PoeViewChangeRequest(view=0, replica_id=f"replica:{i}",
                                 stable_checkpoint=-1,
                                 executed=tuple(entries[:2]))
            for i in range(3)
        )
        new_view = PoeNewView(new_view=1, requests=requests)
        replica.deliver("replica:1", new_view, 10.0)
        assert replica.view == 1
        assert replica.last_executed_sequence == 1
        assert replica.rolled_back_batches == 1
        assert replica.blockchain.head.sequence == 1

    def test_new_view_fills_in_missed_executions(self, auths):
        """A replica that missed slots executes them from the NV-PROPOSE."""
        replica = self._replica(auths)
        entries = [make_entry(auths, seq) for seq in range(3)]
        replica.commit_slot(0, 0, entries[0].batch, proof=entries[0].certificate,
                            now_ms=1.0, speculative=True)
        assert replica.executed_batches == 1
        requests = tuple(
            PoeViewChangeRequest(view=0, replica_id=f"replica:{i}",
                                 stable_checkpoint=-1, executed=tuple(entries))
            for i in range(3)
        )
        replica.deliver("replica:1", PoeNewView(new_view=1, requests=requests), 5.0)
        assert replica.last_executed_sequence == 2
        assert replica.executed_batches == 3

    def test_new_view_from_wrong_sender_ignored(self, auths):
        replica = self._replica(auths)
        new_view = PoeNewView(new_view=1, requests=())
        replica.deliver("replica:2", new_view, 1.0)  # primary of view 1 is replica:1
        assert replica.view == 0


class TestViewChangeIntegration:
    def _run_primary_crash(self, protocol="poe", num_replicas=4):
        # The primary crashes after only a couple of milliseconds, i.e. with
        # most of the client's batches still outstanding.
        config = ClusterConfig(
            protocol=protocol, num_replicas=num_replicas, batch_size=10,
            num_clients=1, client_outstanding=3, total_batches=30,
            request_timeout_ms=100.0, checkpoint_interval=10,
            faults=FaultSchedule.primary_crash(replica_id(0), at_ms=2.0),
            seed=11,
        )
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=120_000)
        return cluster

    def test_primary_crash_triggers_exactly_one_view_change(self):
        cluster = self._run_primary_crash()
        live = [replica for replica in cluster.replicas if not replica.crashed]
        assert all(replica.view == 1 for replica in live)
        assert all(replica.view_changes_completed == 1 for replica in live)

    def test_clients_complete_despite_primary_crash(self):
        cluster = self._run_primary_crash()
        assert all(pool.is_done() for pool in cluster.pools)

    def test_live_replicas_converge_after_view_change(self):
        cluster = self._run_primary_crash()
        live = [replica for replica in cluster.replicas if not replica.crashed]
        executed = {replica.last_executed_sequence for replica in live}
        assert len(executed) == 1
        digests = {replica.executor.state_digest() for replica in live}
        assert len(digests) == 1

    def test_join_rule_brings_all_replicas_into_view_change(self):
        """Replicas that did not time out themselves join after f+1 requests."""
        cluster = self._run_primary_crash(num_replicas=7)
        live = [replica for replica in cluster.replicas if not replica.crashed]
        assert all(replica.view >= 1 for replica in live)
        assert all(pool.is_done() for pool in cluster.pools)


class TestDarkReplicaRecovery:
    def test_dark_replica_catches_up_via_checkpoint_state_transfer(self):
        """A backup kept in the dark by the primary recovers through the
        checkpoint protocol (paper, Example 3 case 2 + Section II-D)."""
        dark = replica_id(3)
        faults = FaultSchedule().add_dark_replicas(replica_id(0), [dark])
        config = ClusterConfig(
            protocol="poe", num_replicas=4, batch_size=10, total_batches=30,
            client_outstanding=4, checkpoint_interval=5,
            faults=faults, seed=13,
        )
        cluster = Cluster(config)
        cluster.start()
        cluster.run_until_done(max_ms=120_000)
        assert all(pool.is_done() for pool in cluster.pools)
        dark_replica = cluster.network.node(dark)
        others = [replica for replica in cluster.replicas
                  if replica.node_id != dark and not replica.crashed]
        # The dark replica cannot participate in consensus but state transfer
        # brings it to within one checkpoint interval of the rest.
        max_executed = max(replica.last_executed_sequence for replica in others)
        assert dark_replica.last_executed_sequence >= max_executed - config.checkpoint_interval
        assert dark_replica.blockchain.verify_chain()
