"""Tests for blocks, the blockchain, the key-value store and speculation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import digest
from repro.ledger.block import Block, GENESIS_PARENT
from repro.ledger.blockchain import Blockchain, InvalidBlockError
from repro.ledger.execution import SpeculativeExecutor
from repro.ledger.store import KeyValueStore
from repro.workload.transactions import Operation, OpType, RequestBatch, Transaction


def make_txn(txn_id, writes=(), reads=()):
    operations = tuple(
        [Operation(op_type=OpType.WRITE, key=k, value=v) for k, v in writes]
        + [Operation(op_type=OpType.READ, key=k) for k in reads]
    )
    return Transaction(txn_id=txn_id, client_id="client:0", operations=operations)


def make_batch(batch_id, transactions):
    return RequestBatch(batch_id=batch_id, transactions=tuple(transactions))


class TestBlock:
    def test_genesis_uses_initial_primary_identity(self):
        genesis = Block.genesis("replica:0")
        assert genesis.parent_hash == GENESIS_PARENT
        assert genesis.batch_digest == digest("genesis", "replica:0")

    def test_block_hash_changes_with_content(self):
        a = Block(sequence=0, batch_digest=b"a", view=0, parent_hash=b"\x00" * 32)
        b = Block(sequence=0, batch_digest=b"b", view=0, parent_hash=b"\x00" * 32)
        assert a.block_hash != b.block_hash

    def test_proof_not_part_of_hash(self):
        a = Block(sequence=0, batch_digest=b"a", view=0, parent_hash=b"p", proof="x")
        b = Block(sequence=0, batch_digest=b"a", view=0, parent_hash=b"p", proof="y")
        assert a.block_hash == b.block_hash


class TestBlockchain:
    def test_appends_chain_correctly(self):
        chain = Blockchain("replica:0")
        chain.append(0, b"batch-0", view=0)
        chain.append(1, b"batch-1", view=0)
        assert len(chain) == 2
        assert chain.verify_chain()
        assert chain.head.sequence == 1

    def test_rejects_out_of_order_append(self):
        chain = Blockchain("replica:0")
        with pytest.raises(InvalidBlockError):
            chain.append(3, b"batch", view=0)

    def test_block_lookup_by_sequence(self):
        chain = Blockchain("replica:0")
        chain.append(0, b"zero", view=0)
        chain.append(1, b"one", view=0)
        assert chain.block_at(1).batch_digest == b"one"
        assert chain.block_at(5) is None

    def test_truncate_after_removes_suffix(self):
        chain = Blockchain("replica:0")
        for i in range(5):
            chain.append(i, f"b{i}".encode(), view=0)
        removed = chain.truncate_after(2)
        assert [block.sequence for block in removed] == [3, 4]
        assert chain.head.sequence == 2
        assert chain.verify_chain()

    def test_checkpoint_block_allows_sequence_gap(self):
        chain = Blockchain("replica:0")
        chain.append(0, b"zero", view=0)
        chain.append_checkpoint(10, b"state", view=1)
        assert chain.head.sequence == 10
        assert chain.verify_chain()
        # Normal appends continue from the checkpoint sequence.
        chain.append(11, b"eleven", view=1)
        assert chain.verify_chain()

    def test_checkpoint_cannot_move_backwards(self):
        chain = Blockchain("replica:0")
        chain.append(0, b"zero", view=0)
        with pytest.raises(InvalidBlockError):
            chain.append_checkpoint(0, b"state", view=1)

    def test_identical_histories_produce_identical_heads(self):
        a = Blockchain("replica:0")
        b = Blockchain("replica:0")
        for i in range(3):
            a.append(i, f"batch-{i}".encode(), view=0)
            b.append(i, f"batch-{i}".encode(), view=0)
        assert a.head.block_hash == b.head.block_hash


class TestKeyValueStore:
    def test_apply_write_then_read(self):
        store = KeyValueStore()
        txn = make_txn("t1", writes=[("k", "v")])
        result, undo = store.apply(txn)
        assert store.get("k") == "v"
        assert result.writes_applied == 1
        assert len(undo) == 1

    def test_read_returns_current_values(self):
        store = KeyValueStore({"k": "orig"})
        result, _ = store.apply(make_txn("t1", reads=["k", "missing"]))
        assert result.reads == (("k", "orig"), ("missing", None))

    def test_revert_restores_previous_value(self):
        store = KeyValueStore({"k": "orig"})
        _, undo = store.apply(make_txn("t1", writes=[("k", "new")]))
        store.revert(undo)
        assert store.get("k") == "orig"

    def test_revert_removes_keys_that_did_not_exist(self):
        store = KeyValueStore()
        _, undo = store.apply(make_txn("t1", writes=[("fresh", "x")]))
        store.revert(undo)
        assert store.get("fresh") is None

    def test_snapshot_digest_changes_with_content(self):
        store = KeyValueStore({"a": "1"})
        before = store.snapshot_digest()
        store.put("a", "2")
        assert store.snapshot_digest() != before

    def test_snapshot_and_replace_all(self):
        store = KeyValueStore({"a": "1"})
        snapshot = store.snapshot()
        store.put("a", "2")
        store.replace_all(snapshot)
        assert store.get("a") == "1"

    def test_result_digest_is_deterministic(self):
        store_a = KeyValueStore({"k": "v"})
        store_b = KeyValueStore({"k": "v"})
        result_a, _ = store_a.apply(make_txn("t", writes=[("k", "w")], reads=["k"]))
        result_b, _ = store_b.apply(make_txn("t", writes=[("k", "w")], reads=["k"]))
        assert result_a.digest() == result_b.digest()


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["k1", "k2", "k3"]), st.text(max_size=5)),
    min_size=0, max_size=10,
))
def test_store_apply_revert_roundtrip_property(writes):
    """Property: applying a transaction and reverting it restores the table."""
    initial = {"k1": "a", "k2": "b"}
    store = KeyValueStore(dict(initial))
    before = store.snapshot_digest()
    _, undo = store.apply(make_txn("t", writes=writes))
    store.revert(undo)
    assert store.snapshot_digest() == before


class TestSpeculativeExecutor:
    def _executor(self):
        store = KeyValueStore({"x": "0"})
        chain = Blockchain("replica:0")
        return SpeculativeExecutor(store, chain), store, chain

    def test_executes_in_order_and_appends_blocks(self):
        executor, store, chain = self._executor()
        executor.execute(0, 0, make_batch("b0", [make_txn("t0", writes=[("x", "1")])]))
        executor.execute(1, 0, make_batch("b1", [make_txn("t1", writes=[("x", "2")])]))
        assert store.get("x") == "2"
        assert len(chain) == 2
        assert executor.last_executed_sequence == 1

    def test_rejects_out_of_order_execution(self):
        executor, _, _ = self._executor()
        with pytest.raises(ValueError):
            executor.execute(1, 0, make_batch("b1", [make_txn("t1")]))

    def test_rollback_reverts_state_and_ledger(self):
        executor, store, chain = self._executor()
        executor.execute(0, 0, make_batch("b0", [make_txn("t0", writes=[("x", "1")])]))
        executor.execute(1, 0, make_batch("b1", [make_txn("t1", writes=[("x", "2")])]))
        executor.execute(2, 0, make_batch("b2", [make_txn("t2", writes=[("x", "3")])]))
        reverted = executor.rollback_to(0)
        assert [r.sequence for r in reverted] == [2, 1]
        assert store.get("x") == "1"
        assert chain.head.sequence == 0
        assert executor.last_executed_sequence == 0
        assert chain.verify_chain()

    def test_rollback_to_minus_one_reverts_everything(self):
        executor, store, chain = self._executor()
        executor.execute(0, 0, make_batch("b0", [make_txn("t0", writes=[("x", "1")])]))
        executor.rollback_to(-1)
        assert store.get("x") == "0"
        assert len(chain) == 0
        assert executor.last_executed_sequence == -1

    def test_execution_can_resume_after_rollback(self):
        executor, store, _ = self._executor()
        executor.execute(0, 0, make_batch("b0", [make_txn("t0", writes=[("x", "1")])]))
        executor.rollback_to(-1)
        executor.execute(0, 1, make_batch("b0'", [make_txn("t0b", writes=[("x", "9")])]))
        assert store.get("x") == "9"

    def test_prune_before_discards_undo_but_keeps_results(self):
        executor, _, _ = self._executor()
        record = executor.execute(
            0, 0, make_batch("b0", [make_txn("t0", writes=[("x", "1")])]))
        assert record.undo
        executor.prune_before(0)
        assert executor.executed(0).undo == []

    def test_state_digest_identical_across_replicas(self):
        exec_a, _, _ = self._executor()
        exec_b, _, _ = self._executor()
        batch = make_batch("b0", [make_txn("t0", writes=[("x", "1")])])
        exec_a.execute(0, 0, batch)
        exec_b.execute(0, 0, batch)
        assert exec_a.state_digest() == exec_b.state_digest()

    def test_fast_forward_installs_checkpoint(self):
        executor, store, chain = self._executor()
        assert executor.fast_forward(9, view=1, state_digest=b"d",
                                     table_snapshot={"x": "99"})
        assert executor.last_executed_sequence == 9
        assert store.get("x") == "99"
        assert chain.head.sequence == 9
        # Further execution continues after the checkpoint.
        executor.execute(10, 1, make_batch("b10", [make_txn("t", writes=[("x", "10")])]))
        assert store.get("x") == "10"

    def test_fast_forward_ignores_stale_checkpoints(self):
        executor, _, _ = self._executor()
        executor.execute(0, 0, make_batch("b0", [make_txn("t0")]))
        assert not executor.fast_forward(0, view=0, state_digest=b"d")

    def test_modelled_execution_skips_store_changes(self):
        store = KeyValueStore({"x": "0"})
        chain = Blockchain("replica:0")
        executor = SpeculativeExecutor(store, chain, apply_operations=False)
        executor.execute(0, 0, make_batch("b0", [make_txn("t0", writes=[("x", "1")])]))
        assert store.get("x") == "0"
        assert len(chain) == 1


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=8))
def test_executor_rollback_property(num_batches, rollback_to):
    """Property: rolling back to sequence k leaves exactly blocks 0..k and the
    store state as of batch k."""
    store = KeyValueStore({"x": "init"})
    chain = Blockchain("replica:0")
    executor = SpeculativeExecutor(store, chain)
    for i in range(num_batches):
        executor.execute(i, 0, make_batch(f"b{i}",
                                          [make_txn(f"t{i}", writes=[("x", str(i))])]))
    target = min(rollback_to, num_batches - 1)
    executor.rollback_to(target)
    assert executor.last_executed_sequence == target
    assert len(chain) == target + 1
    expected = "init" if target < 0 else str(target)
    assert store.get("x") == expected
