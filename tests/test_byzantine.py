"""Adversarial regression tests: Byzantine behaviours, scenario matrix.

These tests exercise the active-misbehaviour layer end to end: an
equivocating (and vote-spoofing) primary against PoE in both schemes and
at both deployment sizes, the auxiliary behaviours (replay, delay, stale
certificates), and the full protocol × scenario matrix against its
documented expectations.

The centrepiece is the revert-demo: with the spoofed-vote fix in place
the equivocating primary cannot split the cluster; with the old
``message.replica_id or sender`` vote counting monkeypatched back in, the
same scenario makes honest replicas execute divergent batches at the same
sequence numbers — and the safety auditor must catch it.
"""

import pytest

from repro.core.replica import PoeReplica
from repro.crypto.cost import CryptoOp
from repro.fabric.audit import SafetyAuditor
from repro.fabric.cluster import Cluster, ClusterConfig, replica_id
from repro.fabric.scenarios import (
    MATRIX_PROTOCOLS,
    SCENARIOS,
    ScenarioParams,
    run_matrix,
    run_scenario,
    unexpected_outcomes,
)
from repro.net.byzantine import (
    ByzantineSpec,
    Delivery,
    EquivocatingPrimary,
    make_behavior,
)
from repro.core.messages import PoePropose
from repro.workload.transactions import make_no_op_batch


def run_byzantine_cluster(protocol, behavior="equivocate-spoof", num_replicas=4,
                          total_batches=10, seed=7, **overrides):
    config = ClusterConfig(
        protocol=protocol, num_replicas=num_replicas, batch_size=10,
        total_batches=total_batches, request_timeout_ms=100.0,
        checkpoint_interval=5, seed=seed,
        byzantine=ByzantineSpec(behavior=behavior, replica_index=0),
        **overrides,
    )
    cluster = Cluster(config)
    auditor = SafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done(max_ms=60_000)
    return cluster, auditor


class TestBehaviorLayer:
    def test_registry_knows_all_behaviors(self):
        for name in ("equivocate", "equivocate-spoof", "delay", "replay",
                     "stale-certify"):
            assert make_behavior(name) is not None
        with pytest.raises(KeyError):
            make_behavior("does-not-exist")

    def test_equivocation_groups_sum_to_the_backups(self):
        behavior = EquivocatingPrimary()
        replicas = [replica_id(i) for i in range(7)]  # n=7, f=2, nf=5
        behavior.bind(replicas[0], replicas, seed=1)
        assert behavior.group_a | behavior.group_b == set(replicas[1:])
        assert not behavior.group_a & behavior.group_b
        # group_b plus the primary itself must be able to reach nf.
        assert len(behavior.group_b) == 5 - 1
        assert len(behavior.group_a) == 2

    def test_equivocating_fanout_is_split_and_votes_spoofed(self):
        behavior = EquivocatingPrimary(spoof_votes=True)
        replicas = [replica_id(i) for i in range(4)]
        behavior.bind(replicas[0], replicas, seed=1)
        batch = make_no_op_batch("batch-0", "client:0", 3)
        propose = PoePropose(view=0, sequence=0, batch=batch)
        fanout = [Delivery(receiver, propose) for receiver in replicas[1:]]
        out = behavior.transform(fanout, now_ms=0.0)
        proposals = {d.receiver: d.message for d in out
                     if isinstance(d.message, PoePropose)}
        for receiver in behavior.group_a:
            assert proposals[receiver].batch.batch_id == "batch-0"
        for receiver in behavior.group_b:
            assert proposals[receiver].batch.batch_id.startswith("byz:")
        spoofed = [d for d in out if not isinstance(d.message, PoePropose)]
        assert spoofed, "vote spoofing must fabricate SUPPORT messages"
        assert {d.receiver for d in spoofed} == behavior.group_a
        assert {d.message.replica_id for d in spoofed} == behavior.group_b

    def test_forged_batches_are_deterministic(self):
        def forge():
            behavior = EquivocatingPrimary()
            replicas = [replica_id(i) for i in range(4)]
            behavior.bind(replicas[0], replicas, seed=3)
            batch = make_no_op_batch("batch-0", "client:0", 3)
            return behavior._forged_batch(0, 0, batch)

        first, second = forge(), forge()
        assert first.batch_id == second.batch_id
        assert first.digest() == second.digest()


class TestEquivocatingPrimary:
    @pytest.mark.parametrize("protocol,num_replicas", [
        ("poe-mac", 4),    # the MAC instantiation at paper scale n=4
        ("poe-ts", 4),
        ("poe-mac", 32),
        ("poe-ts", 32),    # the threshold instantiation at n=32
    ])
    def test_poe_survives_equivocation(self, protocol, num_replicas):
        cluster, auditor = run_byzantine_cluster(
            protocol, num_replicas=num_replicas, total_batches=8)
        report = auditor.check()  # must not raise
        assert report.ok
        assert all(pool.is_done() for pool in cluster.pools)
        live = [replica for replica in cluster.replicas if not replica.crashed]
        # The equivocating primary of view 0 was voted out.
        assert max(replica.view for replica in live) >= 1

    def test_pbft_survives_equivocation(self):
        cluster, auditor = run_byzantine_cluster("pbft")
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)

    def test_hotstuff_survives_equivocation(self):
        """Regression for the QC-gated commit rule: an equivocating leader
        must not get un-certified proposals executed via timeout rounds."""
        cluster, auditor = run_byzantine_cluster("hotstuff")
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)

    def test_spoofed_votes_cannot_forge_a_quorum(self, monkeypatch):
        """With payload-claimed vote identities restored, the lone honest
        group_a replica view-commits real batches on a quorum that never
        existed — the spoof bug is alive — and only the new-view rollback
        saves it.  With the fix intact no spoofed quorum ever forms, so
        nothing has to be rolled back."""
        cluster, auditor = run_byzantine_cluster("poe-mac")
        assert auditor.check().ok
        assert all(replica.rolled_back_batches == 0
                   for replica in cluster.replicas)

        def buggy_mac_support(self, sender, message, slot, now_ms):
            self.charge(CryptoOp.MAC_VERIFY)
            if slot.proposal_digest and message.proposal_digest != slot.proposal_digest:
                return
            slot.support_votes.add(message.replica_id or sender)  # the bug
            self._check_mac_commit(message.view, message.sequence, slot, now_ms)

        monkeypatch.setattr(PoeReplica, "_handle_mac_support", buggy_mac_support)
        cluster, auditor = run_byzantine_cluster("poe-mac")
        victims = [replica for replica in cluster.replicas
                   if replica.rolled_back_batches > 0]
        assert victims, ("spoofed votes must forge a quorum (later healed "
                        "by the view-change rollback) when identities are "
                        "counted from the message payload")

    def test_reverted_spoof_fix_fails_the_auditor(self, monkeypatch):
        """Acceptance criterion: with the old ``message.replica_id or
        sender`` vote counting restored, the equivocating-primary scenario
        must demonstrably fail the safety audit.

        The divergence the spoof bug causes is nowadays *repaired* by two
        newer defence layers — the adopt-time divergence rollback and the
        checkpoint layer's same-height state repair — so demonstrating the
        original end-state violation requires reverting those too; each
        revert on its own stays safe, which is pinned by
        ``test_spoofed_votes_cannot_forge_a_quorum`` and the repair tests."""
        from repro.core.view_change import longest_consecutive_prefix
        from repro.protocols.replica_base import BatchingReplica

        def buggy_mac_support(self, sender, message, slot, now_ms):
            self.charge(CryptoOp.MAC_VERIFY)
            if slot.proposal_digest and message.proposal_digest != slot.proposal_digest:
                return
            slot.support_votes.add(message.replica_id or sender)  # the bug
            self._check_mac_commit(message.view, message.sequence, slot, now_ms)

        def old_adopt(self, proposal, requests, now_ms):
            # PR-3-era adoption: no divergence scan, rollback only beyond kmax.
            prefix, kmax = longest_consecutive_prefix(requests)
            self.rollback_speculation(kmax, now_ms)
            for sequence in [s for s in self._committed
                             if s > kmax or s in prefix]:
                del self._committed[sequence]
            for sequence in sorted(prefix):
                if sequence <= self.last_executed_sequence:
                    continue
                entry = prefix[sequence]
                self._certified_log[sequence] = entry
                self.commit_slot(sequence=sequence, view=entry.view,
                                 batch=entry.batch, proof=entry.certificate,
                                 now_ms=now_ms, speculative=False)
            return kmax

        monkeypatch.setattr(PoeReplica, "_handle_mac_support", buggy_mac_support)
        monkeypatch.setattr(PoeReplica, "adopt_new_view", old_adopt)
        monkeypatch.setattr(BatchingReplica, "_begin_divergence_repair",
                            lambda self, stable, now_ms: None)
        _, auditor = run_byzantine_cluster("poe-mac")
        report = auditor.report()
        kinds = {violation.kind for violation in report.violations}
        assert "divergent-prefix" in kinds, (
            "spoofed votes must split the cluster when identities are "
            "counted from the message payload")


class TestAuxiliaryBehaviors:
    def test_replaying_replica_is_harmless(self):
        # Duplicate messages must be absorbed idempotently by every vote set.
        cluster, auditor = run_byzantine_cluster("poe-mac", behavior="replay")
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)

    def test_delaying_primary_keeps_safety(self):
        cluster, auditor = run_byzantine_cluster(
            "poe-mac", behavior="delay", total_batches=5)
        assert auditor.check().ok

    def test_stale_certificates_are_rejected_and_primary_replaced(self):
        cluster, auditor = run_byzantine_cluster("poe-ts", behavior="stale-certify")
        assert auditor.check().ok
        assert all(pool.is_done() for pool in cluster.pools)
        live = [replica for replica in cluster.replicas
                if replica.node_id != replica_id(0)]
        # Garbage/stale certificates stall view 0; the view change recovers.
        assert max(replica.view for replica in live) >= 1


class TestDarkReplicaRecovery:
    def test_dark_replicas_catch_up_and_audit_safe(self):
        outcome = run_scenario("poe-mac", "dark-replicas")
        assert outcome.safe and outcome.live
        assert outcome.as_expected

    def test_primary_crash_view_change_audits_safe(self):
        outcome = run_scenario("poe-ts", "primary-crash")
        assert outcome.safe and outcome.live
        assert outcome.view_changes >= 1


class TestScenarioMatrix:
    def test_full_matrix_matches_documented_expectations(self):
        from repro.fabric.scenarios import (
            SHARDED_MATRIX_PROTOCOLS,
            SHARDED_SCENARIOS,
        )

        outcomes = run_matrix(params=ScenarioParams(total_batches=10))
        # The sharded columns only run for the shard-capable protocols.
        assert len(outcomes) == (
            len(MATRIX_PROTOCOLS) * len(SCENARIOS)
            + len(SHARDED_MATRIX_PROTOCOLS) * len(SHARDED_SCENARIOS))
        deviations = unexpected_outcomes(outcomes)
        assert not deviations, "\n".join(
            f"{o.protocol} × {o.scenario}: live={o.live} safe={o.safe}\n"
            f"{o.audit.summary()}" for o in deviations)

    def test_every_cell_is_live_and_safe(self):
        """Since the baseline recovery subsystem there are no documented
        deviations left: the formerly expected-stall cells (sbft/zyzzyva ×
        faulty primary) recover through their view changes and the formerly
        expected-unsafe cell (zyzzyva × equivocate) converges after the
        proof-of-misbehaviour view change."""
        outcomes = run_matrix(params=ScenarioParams(total_batches=10))
        assert [(o.protocol, o.scenario) for o in outcomes if not o.safe] == []
        assert [(o.protocol, o.scenario) for o in outcomes if not o.live] == []
