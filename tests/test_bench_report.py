"""Tests for the benchmark reporting helpers."""



from repro.bench.report import format_table, print_results, print_series


class TestFormatTable:
    def test_columns_are_aligned(self):
        rows = [{"protocol": "PoE", "throughput": 123456},
                {"protocol": "HotStuff", "throughput": 7}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 3
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "PoE" in lines[1] and "HotStuff" in lines[2]

    def test_explicit_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        text = format_table(rows, columns=["a", "b"])
        assert "x" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"


class TestReportFile:
    def test_print_results_appends_to_report_file(self, tmp_path, capsys, monkeypatch):
        report = tmp_path / "report.txt"
        monkeypatch.setenv("REPRO_BENCH_REPORT", str(report))
        print_results("My Table", [{"x": 1}])
        printed = capsys.readouterr().out
        assert "My Table" in printed
        assert report.exists()
        assert "My Table" in report.read_text()

    def test_print_series_appends_points(self, tmp_path, capsys, monkeypatch):
        report = tmp_path / "report.txt"
        monkeypatch.setenv("REPRO_BENCH_REPORT", str(report))
        print_series("My Series", [{"t": 1, "v": 2.5}])
        assert "t=1" in report.read_text()
        assert "v=2.5" in capsys.readouterr().out

    def test_unwritable_report_path_does_not_raise(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REPORT", "/nonexistent-dir/report.txt")
        print_results("Still prints", [{"x": 1}])
        assert "Still prints" in capsys.readouterr().out


class TestPerfDeltaMode:
    """compare_reports / check_processed_events (the same-host delta mode)."""

    def _row(self, protocol="poe-mac", n=32, events=1000, eps=100000.0):
        return {"protocol": protocol, "n": n, "batch_size": 100,
                "total_batches": 60, "seed": 3, "processed_events": events,
                "events_per_wall_sec": eps}

    def test_compare_matches_rows_and_reports_speedup(self):
        from repro.bench.perf import compare_reports
        baseline = {"clusters": [self._row(eps=100000.0)],
                    "event_loop": {"events_per_sec": 200000.0}}
        current = {"clusters": [self._row(eps=250000.0)],
                   "event_loop": {"events_per_sec": 400000.0}}
        delta = compare_reports(baseline, current)
        assert delta["event_loop_speedup"] == 2.0
        assert delta["behaviour_unchanged"] is True
        row = delta["rows"][0]
        assert row["speedup"] == 2.5
        assert row["behaviour_unchanged"] is True

    def test_compare_flags_processed_events_drift(self):
        from repro.bench.perf import compare_reports
        baseline = {"clusters": [self._row(events=1000)]}
        current = {"clusters": [self._row(events=999)]}
        delta = compare_reports(baseline, current)
        assert delta["behaviour_unchanged"] is False
        assert delta["rows"][0]["behaviour_unchanged"] is False

    def test_compare_reports_new_rows(self):
        from repro.bench.perf import compare_reports
        baseline = {"clusters": []}
        current = {"clusters": [self._row(n=128)]}
        delta = compare_reports(baseline, current)
        assert delta["rows"][0]["status"] == "new"
        # New rows cannot regress behaviour by definition.
        assert delta["behaviour_unchanged"] is True

    def test_check_processed_events_passes_on_match(self):
        from repro.bench.perf import check_processed_events, row_key
        results = {"clusters": [self._row(events=1234)]}
        expectations = {"rows": {row_key(results["clusters"][0]): 1234}}
        assert check_processed_events(results, expectations) == []

    def test_check_processed_events_reports_all_mismatch_kinds(self):
        from repro.bench.perf import check_processed_events, row_key
        drifted = self._row(events=1234)
        unexpected = self._row(protocol="pbft", events=50)
        results = {"clusters": [drifted, unexpected]}
        expectations = {"rows": {row_key(drifted): 1200,
                                 "zyzzyva:n4:b100:t60:s3": 77}}
        problems = check_processed_events(results, expectations)
        assert len(problems) == 3  # drift, unexpected row, missing row
        assert any("1234 != expected 1200" in p for p in problems)
        assert any("no expectation recorded" in p for p in problems)
        assert any("missing from the suite" in p for p in problems)

    def test_compare_flags_baseline_rows_missing_from_current(self):
        from repro.bench.perf import compare_reports
        baseline = {"clusters": [self._row(), self._row(protocol="pbft")]}
        current = {"clusters": [self._row(eps=120000.0)]}
        delta = compare_reports(baseline, current)
        missing = [r for r in delta["rows"] if r["status"] == "missing"]
        assert len(missing) == 1 and missing[0]["row"].startswith("pbft")
        assert delta["behaviour_unchanged"] is False

    def test_profile_batch_budget_tracks_the_suite_rows(self):
        from repro.bench.perf import QUICK, row_batch_budget
        assert row_batch_budget("poe-mac", 128, QUICK) == 12
        assert row_batch_budget("poe-mac", 4, QUICK) == QUICK.cluster_batches

    def test_check_processed_events_reports_scale_mismatch_clearly(self):
        from repro.bench.perf import check_processed_events
        results = {"scale": "paper", "clusters": [self._row()]}
        expectations = {"scale": "quick", "rows": {}}
        problems = check_processed_events(results, expectations)
        assert problems == ["scale mismatch: expectations are for 'quick', "
                            "run is 'paper'"]
