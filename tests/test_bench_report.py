"""Tests for the benchmark reporting helpers."""

import os

import pytest

from repro.bench.report import format_table, print_results, print_series


class TestFormatTable:
    def test_columns_are_aligned(self):
        rows = [{"protocol": "PoE", "throughput": 123456},
                {"protocol": "HotStuff", "throughput": 7}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 3
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "PoE" in lines[1] and "HotStuff" in lines[2]

    def test_explicit_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        text = format_table(rows, columns=["a", "b"])
        assert "x" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"


class TestReportFile:
    def test_print_results_appends_to_report_file(self, tmp_path, capsys, monkeypatch):
        report = tmp_path / "report.txt"
        monkeypatch.setenv("REPRO_BENCH_REPORT", str(report))
        print_results("My Table", [{"x": 1}])
        printed = capsys.readouterr().out
        assert "My Table" in printed
        assert report.exists()
        assert "My Table" in report.read_text()

    def test_print_series_appends_points(self, tmp_path, capsys, monkeypatch):
        report = tmp_path / "report.txt"
        monkeypatch.setenv("REPRO_BENCH_REPORT", str(report))
        print_series("My Series", [{"t": 1, "v": 2.5}])
        assert "t=1" in report.read_text()
        assert "v=2.5" in capsys.readouterr().out

    def test_unwritable_report_path_does_not_raise(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REPORT", "/nonexistent-dir/report.txt")
        print_results("Still prints", [{"x": 1}])
        assert "Still prints" in capsys.readouterr().out
