"""Legacy setup shim.

The evaluation environment is offline and has no `wheel` package, so
PEP 660 editable installs cannot build; keeping a setup.py lets
``pip install -e .`` fall back to the classic ``setup.py develop`` path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
