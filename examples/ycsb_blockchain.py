#!/usr/bin/env python3
"""Blockchain ledger demo: inspect the chain PoE builds over a YCSB workload.

The paper's RESILIENTDB fabric stores every agreed batch as a block
``B_i = {k, d, v, H(B_{i-1})}`` chained to its predecessor, with the PoE
threshold certificate as the proof of acceptance (Section III-A).  This
example runs a heavily-skewed YCSB write workload through a PoE cluster
and then walks the resulting blockchain, verifying the hash chain and
showing how the certificates make the ledger independently auditable.

Run with::

    python examples/ycsb_blockchain.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fabric.cluster import Cluster, ClusterConfig
from repro.workload.ycsb import YcsbConfig


def main() -> None:
    config = ClusterConfig(
        protocol="poe",
        num_replicas=4,
        batch_size=20,
        num_clients=2,
        client_outstanding=4,
        total_batches=25,           # per client pool
        execute_operations=True,
        use_ycsb_payload=True,
        ycsb=YcsbConfig(num_records=2_000, write_fraction=0.9, zipf_theta=0.9,
                        seed=7),
        checkpoint_interval=10,
        seed=7,
    )
    cluster = Cluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=120_000)

    replica = cluster.replicas[1]   # any non-faulty replica works
    chain = replica.blockchain
    print("YCSB over a PoE blockchain")
    print("--------------------------")
    print(f"clients:          {config.num_clients} pools x {config.total_batches} batches")
    print(f"blocks in ledger: {len(chain)}")
    print(f"chain verifies:   {chain.verify_chain()}")
    print()
    print("last five blocks:")
    for block in chain.blocks()[-5:]:
        proof = type(block.proof).__name__ if block.proof is not None else "-"
        print(f"  seq={block.sequence:4d} view={block.view} "
              f"digest={block.batch_digest.hex()[:16]}... "
              f"parent={block.parent_hash.hex()[:16]}... proof={proof}")
    print()

    # The YCSB table is identical on every replica: speculative execution
    # never diverged.
    states = {r.store.snapshot_digest().hex()[:16] for r in cluster.replicas}
    applied = cluster.replicas[0].store.applied_transactions
    print(f"transactions applied per replica: {applied}")
    print(f"distinct replica states:          {len(states)} (expected 1)")

    # Skew check: the Zipfian workload concentrates writes on few keys.
    result = cluster.result()
    print(f"throughput: {result.throughput_txn_per_s:,.0f} txn/s, "
          f"latency: {result.avg_latency_ms:.2f} ms")


if __name__ == "__main__":
    main()
