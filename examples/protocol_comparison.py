#!/usr/bin/env python3
"""Compare PoE against PBFT, SBFT, HotStuff and Zyzzyva on one configuration.

A miniature version of the paper's Figure 9 experiment: run every protocol
on the same simulated deployment, once failure-free and once with a single
crashed backup, and print the throughput/latency table.  The headline
result — PoE leads once anything fails, while Zyzzyva's fast path
collapses — is visible even at this small scale.

Run with::

    python examples/protocol_comparison.py [num_replicas]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.report import print_results
from repro.fabric.experiments import ExperimentConfig, run_protocol_comparison


def main() -> None:
    num_replicas = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    base = ExperimentConfig(
        num_replicas=num_replicas,
        batch_size=100,
        num_batches=60,
    )

    for failure in (False, True):
        label = ("single backup failure" if failure else "no failures")
        results = run_protocol_comparison(
            ExperimentConfig(**{**base.__dict__,
                                "single_backup_failure": failure}))
        rows = [
            {
                "protocol": result.protocol,
                "throughput_txn_per_s": f"{result.throughput_txn_per_s:,.0f}",
                "avg_latency_ms": f"{result.avg_latency_ms:.2f}",
            }
            for result in sorted(results.values(),
                                 key=lambda r: -r.throughput_txn_per_s)
        ]
        print_results(f"n = {num_replicas} replicas, {label}", rows)

    print()
    print("Expected shape (paper, Figures 9(a)-(d)): without failures Zyzzyva's")
    print("single-phase fast path leads with PoE close behind; with one crashed")
    print("backup PoE leads, PBFT and SBFT follow, and Zyzzyva/HotStuff trail by")
    print("one to two orders of magnitude.")


if __name__ == "__main__":
    main()
