#!/usr/bin/env python3
"""Adversarial fault matrix: five protocols × six fault scenarios, audited.

Sweeps {PoE-MAC, PoE-TS, PBFT, SBFT, Zyzzyva, HotStuff} across
{no-fault, backup-crash, primary-crash, dark-replicas, equivocating
primary, partition-heal}.  Every cell runs on the deterministic simulated
fabric with the cross-replica safety auditor attached; the table reports
liveness (did every client finish its budget?) and safety (did the
auditor find divergent prefixes, under-quorum completions, rollbacks past
a checkpoint, or broken ledgers?).

Expected deviations are part of the story the paper tells:

* SBFT and Zyzzyva implement no view change here, so a faulty primary
  stalls them (``stall``).
* Zyzzyva under an equivocating primary splits its replicas onto
  divergent speculative histories for good (``UNSAFE``) — the paper's
  Figure 1 lists Zyzzyva as unsafe for exactly this reason.

Any cell marked ``!!`` deviates from those documented expectations and
makes the run exit non-zero — that is the regression signal CI consumes.

Run with::

    python examples/fault_matrix.py [--replicas N] [--batches B] [--seed S]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fabric.scenarios import (
    MATRIX_PROTOCOLS,
    SCENARIOS,
    ScenarioParams,
    format_matrix,
    run_matrix,
    unexpected_outcomes,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replicas", type=int, default=4,
                        help="replicas per cluster (default 4)")
    parser.add_argument("--batches", type=int, default=20,
                        help="client batch budget per cell (default 20)")
    parser.add_argument("--seed", type=int, default=11, help="base RNG seed")
    parser.add_argument("--protocols", nargs="*", default=list(MATRIX_PROTOCOLS),
                        help=f"protocol keys (default: {' '.join(MATRIX_PROTOCOLS)})")
    parser.add_argument("--scenarios", nargs="*", default=list(SCENARIOS),
                        help=f"scenario keys (default: {' '.join(SCENARIOS)})")
    args = parser.parse_args(argv)

    params = ScenarioParams(num_replicas=args.replicas,
                            total_batches=args.batches, seed=args.seed)
    outcomes = run_matrix(args.protocols, args.scenarios, params)

    print(f"Fault matrix (n={args.replicas}, {args.batches} batches/cell, "
          f"seed {args.seed}) — every cell audited for safety")
    print("=" * 72)
    print(format_matrix(outcomes))
    print()
    print("cell legend: liveness/safety; '!!' marks deviation from the")
    print("documented expectation (sbft+zyzzyva stall without a view change;")
    print("zyzzyva is unsafe under equivocation by design).")
    print()

    expected_violations = [o for o in outcomes if not o.safe and not o.expected_safe]
    for outcome in expected_violations:
        print(f"{outcome.protocol} × {outcome.scenario}: expected unsafety, "
              f"auditor reported {len(outcome.audit.violations)} violations "
              f"(e.g. {outcome.audit.violations[0]})")

    deviations = unexpected_outcomes(outcomes)
    safe_cells = sum(1 for o in outcomes if o.safe)
    live_cells = sum(1 for o in outcomes if o.live)
    print()
    print(f"{len(outcomes)} cells: {live_cells} live, {safe_cells} safe, "
          f"{len(deviations)} unexpected outcomes")
    if deviations:
        print()
        for outcome in deviations:
            print(f"UNEXPECTED: {outcome.protocol} × {outcome.scenario} -> "
                  f"live={outcome.live} safe={outcome.safe} "
                  f"({outcome.completed_batches}/{outcome.expected_batches} batches)")
            print(outcome.audit.summary())
        return 1
    print("all outcomes match the documented expectations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
