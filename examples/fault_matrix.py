#!/usr/bin/env python3
"""Adversarial fault matrix: six protocols × twenty-one fault scenarios, audited.

Sweeps {PoE-MAC, PoE-TS, PBFT, SBFT, Zyzzyva, HotStuff} across crash,
partition, Byzantine (network-boundary and replica-level), adaptive
(primary-targeting, boundary equivocation, timeout-riding), membership
churn, drifting geo-topology, epoch reconfiguration (consensus-committed
grow/shrink, a membership change racing a view change, repeated
grow/shrink cycles) and colluding-cabal scenarios (playbook-coordinated
equivocation, and a Byzantine proposer's unsafe membership change that
every honest replica must refuse).  Every cell runs on the deterministic
simulated fabric with the cross-replica safety auditor attached; the
table reports liveness (did every client finish its budget?) and safety
(did the auditor find divergent prefixes, under-quorum completions,
rollbacks past a checkpoint, broken ledgers, or invalid epoch logs?).

On top of the single-group grid, the sharded rows (``xshard-*``) run a
two-shard cluster with cross-shard 2PC for the PoE-MAC and PBFT shard
protocols, including a crash-mid-2PC coordinator and two Byzantine
coordinator behaviours (equivocating and stalling decides); the
shard-aware auditor additionally checks cross-shard atomicity and
decide-certificate validity in those cells.

Since the baseline recovery subsystem (SBFT and Zyzzyva view changes,
including Zyzzyva's client proof-of-misbehaviour path) there are **no
expected deviations left**: every cell must be live *and* safe.  Any cell
marked ``!!`` deviates and makes the run exit non-zero — that is the
regression signal CI consumes.

``--json PATH`` additionally writes the outcome table in machine-readable
form, and ``--expected PATH`` diffs the observed liveness/safety of every
cell against a checked-in expectations file (``MATRIX_EXPECTATIONS.json``
at the repository root), so an expectation flip shows up as a reviewable
diff instead of being buried in an exit code.

``--soak STEPS`` switches to the bounded-horizon soak: thousands of
batches per run with a shortened client timeout, sampling every tracked
bookkeeping map along the way — a map still growing late in the run
(past the checkpoint/retention plateau) is a leak and fails the run.

Run with::

    python examples/fault_matrix.py [--replicas N] [--batches B] [--seed S]
        [--json OUT.json] [--expected MATRIX_EXPECTATIONS.json]
        [--soak STEPS] [--only PROTOCOL:SCENARIO]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fabric.scenarios import (
    MATRIX_PROTOCOLS,
    SCENARIOS,
    SHARDED_MATRIX_PROTOCOLS,
    SHARDED_SCENARIOS,
    ScenarioParams,
    default_matrix_scenarios,
    format_matrix,
    run_matrix,
    run_soak,
    unexpected_outcomes,
    unknown_name_message,
)

#: Soak growth bound: a tracked map may exceed its mid-run plateau by
#: this factor plus the slack constant before it counts as a leak
#: (mirrors tests/test_soak.py).
SOAK_GROWTH_FACTOR = 1.5
SOAK_GROWTH_SLACK = 64


def run_soak_sweep(protocols, scenarios, steps: int, seed: int) -> int:
    """Long-horizon soak over the selected cells; non-zero on any leak."""
    from repro.fabric.scenarios import soak_params

    failures = 0
    for protocol in protocols:
        for scenario in scenarios:
            params = soak_params(steps, seed=seed)
            report = run_soak(protocol, scenario, steps=steps, params=params)
            baseline = report.samples[1] if len(report.samples) > 1 \
                else report.samples[0]
            final = report.samples[-1]
            # Reply-state GC runs on a time horizon (32 timeouts); a run
            # that never crosses two of those windows cannot tell a leak
            # from a not-yet-pruned map.
            window_ms = 32 * params.request_timeout_ms
            if final.now_ms < 2 * window_ms:
                print(f"{protocol:>10} × {scenario:<22} SKIP  run spans "
                      f"{final.now_ms:.0f}ms < two retention windows "
                      f"({2 * window_ms:.0f}ms) — raise STEPS")
                continue
            growers = []
            for name in report.tracked_names():
                plateau = baseline.max_size(name)
                late = final.max_size(name)
                if late > plateau * SOAK_GROWTH_FACTOR + SOAK_GROWTH_SLACK:
                    growers.append((name, plateau, late))
            ok = report.live and report.safe and not growers
            status = "ok" if ok else "FAIL"
            print(f"{protocol:>10} × {scenario:<22} {status:>4}  "
                  f"live={report.live} safe={report.safe} "
                  f"completed={report.completed_batches}/{steps} "
                  f"span={final.now_ms:.0f}ms")
            print(f"{'':>12} {'map':<26} {'mid-run':>8} {'final':>8}")
            for name in report.tracked_names():
                marker = " <-- LEAK" if any(g[0] == name for g in growers) else ""
                print(f"{'':>12} {name:<26} {baseline.max_size(name):>8} "
                      f"{final.max_size(name):>8}{marker}")
            if not ok:
                failures += 1
                if not report.safe:
                    print(report.audit.summary())
    print()
    if failures:
        print(f"{failures} soak run(s) failed (stall, violation or leak)")
        return 1
    print("all soak runs live, safe and bounded")
    return 0


def outcome_table(outcomes, params: ScenarioParams) -> dict:
    """The machine-readable form of one matrix sweep."""
    return {
        "n": params.num_replicas,
        "batches": params.total_batches,
        "seed": params.seed,
        "cells": [
            {
                "protocol": outcome.protocol,
                "scenario": outcome.scenario,
                "live": outcome.live,
                "safe": outcome.safe,
                "expected_live": outcome.expected_live,
                "expected_safe": outcome.expected_safe,
                "completed_batches": outcome.completed_batches,
                "expected_batches": outcome.expected_batches,
                "view_changes": outcome.view_changes,
                "epochs": outcome.epochs,
                "violations": [
                    {"kind": violation.kind, "detail": violation.detail}
                    for violation in outcome.audit.violations
                ],
            }
            for outcome in outcomes
        ],
    }


def diff_against_expected(table: dict, expected_path: str) -> list:
    """Compare observed (live, safe) per cell against the checked-in file.

    Returns human-readable difference lines; an empty list means the sweep
    reproduced the recorded outcomes exactly.
    """
    with open(expected_path, "r", encoding="utf-8") as handle:
        expected = json.load(handle)
    differences = []
    for key in ("n", "batches", "seed"):
        if key in expected and expected[key] != table[key]:
            differences.append(
                f"sweep parameter {key}: observed {table[key]}, "
                f"recorded {expected[key]} — different experiment, "
                f"outcomes are not comparable")
    if differences:
        return differences
    recorded = {
        (cell["protocol"], cell["scenario"]): (cell["live"], cell["safe"])
        for cell in expected.get("cells", [])
    }
    observed = {
        (cell["protocol"], cell["scenario"]): (cell["live"], cell["safe"])
        for cell in table["cells"]
    }
    for key in sorted(set(recorded) | set(observed)):
        have, want = observed.get(key), recorded.get(key)
        if have == want:
            continue
        def fmt(value):
            if value is None:
                return "absent"
            return f"live={value[0]} safe={value[1]}"
        differences.append(
            f"{key[0]} × {key[1]}: observed {fmt(have)}, recorded {fmt(want)}")
    return differences


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replicas", type=int, default=4,
                        help="replicas per cluster (default 4)")
    parser.add_argument("--batches", type=int, default=20,
                        help="client batch budget per cell (default 20)")
    parser.add_argument("--seed", type=int, default=11, help="base RNG seed")
    parser.add_argument("--protocols", nargs="*", default=list(MATRIX_PROTOCOLS),
                        help=f"protocol keys (default: {' '.join(MATRIX_PROTOCOLS)})")
    parser.add_argument("--scenarios", nargs="*", default=None,
                        help="scenario keys (default: "
                             f"{' '.join(default_matrix_scenarios())}; "
                             "with --soak the default shrinks to no-fault)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable outcome table here")
    parser.add_argument("--expected", metavar="PATH", default=None,
                        help="diff observed outcomes against this checked-in "
                             "expectations file (exit non-zero on differences)")
    parser.add_argument("--only", metavar="PROTOCOL:SCENARIO", default=None,
                        help="run a single cell (e.g. zyzzyva:forge-history) "
                             "— the local-iteration shortcut; incompatible "
                             "with --expected, which diffs the full sweep")
    parser.add_argument("--soak", metavar="STEPS", type=int, default=None,
                        help="run bounded-horizon soaks of STEPS batches "
                             "instead of the matrix, checking that every "
                             "tracked bookkeeping map plateaus (default "
                             "scenario set: no-fault; combine with "
                             "--scenarios/--protocols or --only)")
    args = parser.parse_args(argv)

    if args.only:
        protocol, _, scenario = args.only.partition(":")
        if not protocol or not scenario:
            parser.error("--only expects PROTOCOL:SCENARIO "
                         "(e.g. zyzzyva:forge-history)")
        if args.expected:
            parser.error("--only runs a single cell; --expected diffs the "
                         "full sweep — drop one of them")
        if protocol not in args.protocols:
            parser.error(unknown_name_message("protocol", protocol,
                                              args.protocols))
        if scenario not in SCENARIOS and scenario not in SHARDED_SCENARIOS:
            parser.error(unknown_name_message(
                "scenario", scenario,
                list(SCENARIOS) + list(SHARDED_SCENARIOS)))
        if scenario in SHARDED_SCENARIOS \
                and protocol not in SHARDED_MATRIX_PROTOCOLS:
            parser.error(
                f"sharded scenario {scenario!r} only runs for "
                f"{' '.join(SHARDED_MATRIX_PROTOCOLS)} (got {protocol!r})")
        args.protocols = [protocol]
        args.scenarios = [scenario]

    if args.scenarios is None:
        args.scenarios = ["no-fault"] if args.soak is not None \
            else list(default_matrix_scenarios())
    unknown = [s for s in args.scenarios
               if s not in SCENARIOS and s not in SHARDED_SCENARIOS]
    if unknown:
        parser.error(unknown_name_message(
            "scenario", " ".join(unknown),
            list(SCENARIOS) + list(SHARDED_SCENARIOS)))
    sharded_picked = [s for s in args.scenarios if s in SHARDED_SCENARIOS]
    if args.soak is not None and sharded_picked:
        parser.error(f"--soak is single-group only; drop the sharded "
                     f"scenario(s): {' '.join(sharded_picked)}")

    if args.soak is not None:
        if args.expected or args.json:
            parser.error("--soak checks state bounds, not matrix outcomes; "
                         "drop --expected/--json")
        return run_soak_sweep(args.protocols, args.scenarios,
                              steps=args.soak, seed=args.seed)

    params = ScenarioParams(num_replicas=args.replicas,
                            total_batches=args.batches, seed=args.seed)
    outcomes = run_matrix(args.protocols, args.scenarios, params)
    table = outcome_table(outcomes, params)

    print(f"Fault matrix (n={args.replicas}, {args.batches} batches/cell, "
          f"seed {args.seed}) — every cell audited for safety")
    print("=" * 72)
    print(format_matrix(outcomes))
    print()
    print("cell legend: liveness/safety; '!!' marks deviation from the")
    print("documented expectation. Since the baseline recovery subsystem")
    print("(SBFT + Zyzzyva view changes) every cell is expected live+safe.")
    print()

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(table, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"outcome table written to {args.json}")

    failed = False
    if args.expected:
        differences = diff_against_expected(table, args.expected)
        if differences:
            failed = True
            print(f"outcomes differ from {args.expected}:")
            for line in differences:
                print(f"  - {line}")
            print("(an intentional flip must update the expectations file "
                  "in the same change)")
        else:
            print(f"outcomes match {args.expected}")

    deviations = unexpected_outcomes(outcomes)
    safe_cells = sum(1 for o in outcomes if o.safe)
    live_cells = sum(1 for o in outcomes if o.live)
    print()
    print(f"{len(outcomes)} cells: {live_cells} live, {safe_cells} safe, "
          f"{len(deviations)} unexpected outcomes")
    if deviations:
        print()
        for outcome in deviations:
            print(f"UNEXPECTED: {outcome.protocol} × {outcome.scenario} -> "
                  f"live={outcome.live} safe={outcome.safe} "
                  f"({outcome.completed_batches}/{outcome.expected_batches} batches)")
            print(outcome.audit.summary())
        return 1
    if failed:
        return 1
    print("all outcomes match the documented expectations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
