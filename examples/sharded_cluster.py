#!/usr/bin/env python3
"""Multi-group sharding demo: three PoE shards, cross-shard 2PC, audited.

The keyspace is partitioned across three independent PoE consensus
groups (n=4 each) running on one deterministic simulator.  A client
pool drives a mixed YCSB-style workload: most batches touch a single
shard and ride that shard's ordinary consensus path, while a tunable
fraction span two shards and run two-phase commit — the prepare and
commit/abort records are themselves consensus-committed inside every
touched shard, and a decide is only accepted with f+1 matching
attestations per shard (the guard that holds the line against a
Byzantine coordinator).

After the run, the shard-aware safety auditor replays its independent
observations: the full single-group audit inside every shard, plus the
cross-shard invariants (no split commit/abort, certified decides,
coordinator journal consistency, per-shard reply quorums).

Run with::

    python examples/sharded_cluster.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fabric.audit import ShardedSafetyAuditor
from repro.fabric.sharding import ShardedCluster, ShardedClusterConfig

NUM_SHARDS = 3
CROSS_FRACTION = 0.25


def main() -> None:
    config = ShardedClusterConfig(
        num_shards=NUM_SHARDS,
        protocols="poe-mac",
        num_replicas=4,
        batch_size=16,
        total_batches=40,
        cross_shard_fraction=CROSS_FRACTION,
        seed=7,
    )
    cluster = ShardedCluster(config)
    auditor = ShardedSafetyAuditor.attach(cluster)
    cluster.start()
    cluster.run_until_done()

    print(f"{NUM_SHARDS} PoE shards (n=4 each), "
          f"{CROSS_FRACTION:.0%} cross-shard transactions")
    print("=" * 60)
    for shard, shard_cluster in enumerate(cluster.shard_clusters):
        heads = {replica.blockchain.head.sequence
                 for replica in shard_cluster.replicas}
        print(f"  shard {shard}: {config.protocol_for(shard):>8}  "
              f"ledger head sequence(s): {sorted(heads)}")

    summary = cluster.result()
    single, cross = 0, 0
    for pool in cluster.pools:
        cross += len(pool.xshard_outcomes)
        single += len(pool.completions) - len(pool.xshard_outcomes)
    outcomes = {}
    for pool in cluster.pools:
        for txn, per_shard in pool.xshard_outcomes.items():
            outcome = set(per_shard.values())
            assert len(outcome) == 1, f"{txn} split across shards: {per_shard}"
            outcomes[txn] = outcome.pop()
    committed = sum(1 for outcome in outcomes.values() if outcome == "committed")

    print()
    print(f"completed batches:      {single + cross} "
          f"({single} single-shard, {cross} cross-shard)")
    print(f"cross-shard decisions:  {committed} committed, "
          f"{len(outcomes) - committed} aborted — uniform on every shard")
    if cluster.coordinator is not None:
        print(f"coordinator journal:    {len(cluster.coordinator.journal)} "
              f"certified 2PC decisions")
    print(f"virtual duration:       {cluster.now:,.0f} ms "
          f"({summary.throughput_txn_per_s:,.0f} txn/s virtual)")

    print()
    report = auditor.report()
    print("shard-aware safety audit")
    print("-" * 60)
    print(report.summary())
    assert report.ok, "the audit must pass on a fault-free run"
    assert cross > 0, "the workload must exercise cross-shard 2PC"
    print()
    print("every shard kept a consistent prefix, and every cross-shard")
    print("transaction committed or aborted atomically across its shards")


if __name__ == "__main__":
    main()
