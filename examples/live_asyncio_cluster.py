#!/usr/bin/env python3
"""Run the PoE state machines live on asyncio instead of the simulator.

Every protocol in this library is a sans-IO state machine, so the exact
same :class:`~repro.core.replica.PoeReplica` objects that power the
deterministic benchmarks can be driven by a real event loop.  This example
starts four replicas and a client pool on asyncio's in-process transport,
lets them process transactions for a couple of wall-clock seconds and
prints what happened.

Run with::

    python examples/live_asyncio_cluster.py
"""

from __future__ import annotations

import asyncio
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.client import PoeClientPool
from repro.core.replica import PoeReplica
from repro.crypto.authenticator import make_authenticators
from repro.net.transport import AsyncTransport
from repro.protocols.base import NodeConfig
from repro.workload.transactions import make_no_op_batch

REPLICAS = [f"replica:{i}" for i in range(4)]


async def run_cluster(duration_s: float = 2.0):
    config = NodeConfig(
        replica_ids=list(REPLICAS),
        batch_size=50,
        request_timeout_ms=2_000.0,
        execute_operations=True,
    )
    auths = make_authenticators(REPLICAS, ["client:0"], seed=b"live-demo")
    transport = AsyncTransport()
    replicas = [PoeReplica(rid, config, auths[rid]) for rid in REPLICAS]
    for replica in replicas:
        transport.add_replica(replica)
    pool = PoeClientPool(
        "client:0",
        config,
        batch_source=lambda i, now: make_no_op_batch(
            f"live:batch:{i}", "client:0", config.batch_size, created_at_ms=now),
        target_outstanding=8,
        total_batches=None,          # keep submitting for the whole run
    )
    transport.add_client(pool)

    await transport.start()
    started = time.perf_counter()
    await transport.run_for(duration_s)
    elapsed = time.perf_counter() - started
    await transport.stop()
    return pool, replicas, elapsed, transport


def main() -> None:
    pool, replicas, elapsed, transport = asyncio.run(run_cluster())
    txns = pool.completed_txns
    print("PoE on a live asyncio event loop")
    print("--------------------------------")
    print(f"wall-clock duration:      {elapsed:.2f} s")
    print(f"batches completed:        {pool.completed_batches}")
    print(f"transactions completed:   {txns:,} "
          f"(~{txns / elapsed:,.0f} txn/s wall clock)")
    print(f"messages delivered:       {transport.delivered_count:,}")
    print(f"blocks per replica:       "
          f"{[len(replica.blockchain) for replica in replicas]}")
    # The run is cut mid-flight, so replicas may differ by a few in-flight
    # slots; up to the shortest ledger, every replica agrees on every block.
    common = min(replica.last_executed_sequence for replica in replicas)
    common_hashes = {replica.blockchain.block_at(common).block_hash
                     for replica in replicas} if common >= 0 else set()
    print(f"common executed prefix:   sequence 0..{common}")
    print(f"distinct block hashes at the common prefix: {len(common_hashes)} "
          f"(expected 1)")
    assert common < 0 or len(common_hashes) == 1


if __name__ == "__main__":
    main()
