#!/usr/bin/env python3
"""Fault-tolerance demo: crash the primary mid-run and watch PoE recover.

The scenario mirrors the paper's Figure 10 experiment:

1. the cluster processes transactions normally under the primary of view 0;
2. the primary crashes;
3. clients time out and broadcast their pending requests, backups forward
   them to the (dead) primary and time out as well;
4. the replicas exchange VC-REQUEST messages, the next primary sends
   NV-PROPOSE, and everyone moves to view 1 — rolling back any speculative
   execution the new view does not cover;
5. throughput recovers under the new primary.

Run with::

    python examples/byzantine_primary.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fabric.timeline import run_view_change_timeline


def main() -> None:
    timeline = run_view_change_timeline(
        protocol="poe",
        num_replicas=8,
        batch_size=50,
        crash_at_ms=1_000.0,
        duration_ms=4_000.0,
        request_timeout_ms=300.0,
        bucket_ms=250.0,
        client_outstanding=8,
    )

    print("PoE under a primary failure (crash at t = "
          f"{timeline.primary_crash_ms / 1000:.2f}s)")
    print("----------------------------------------------------------")
    peak = max(timeline.timeline.buckets) or 1.0
    for point in timeline.series():
        bar = "#" * int(40 * point["throughput_txn_per_s"] / peak)
        marker = " <- primary crashes" if abs(
            point["time_s"] * 1000 - timeline.primary_crash_ms) < timeline.timeline.bucket_ms / 2 else ""
        print(f"  t={point['time_s']:5.2f}s  "
              f"{point['throughput_txn_per_s']:>10,.0f} txn/s  |{bar}{marker}")
    print()
    print(f"view changes completed: {timeline.view_changes_completed}")
    print(f"system is now in view:  {timeline.new_view} "
          f"(primary replica:{timeline.new_view % timeline.n})")
    print(f"transactions executed:  {timeline.total_txns:,}")
    assert timeline.view_changes_completed >= 1
    print("the cluster detected the faulty primary, replaced it and resumed")


if __name__ == "__main__":
    main()
