#!/usr/bin/env python3
"""Bounded model checker: exhaustive interleavings of the recovery engine.

Drives the deterministic simulator through *every* delivery ordering of a
tiny cluster (n=4, one or two batches), with optional crash and
equivocation choice points, and evaluates the cross-replica safety
invariants (divergent prefixes, duplicate execution, broken ledger
chains, rollbacks past a stable checkpoint) at every reachable state.
Deadlocks and stalls are distinguished from legitimate quiescence, and
the smallest max-view over all completing orderings is reported, so a
cell advertised as "forces a view change" provably does.

The default cells pair PoE and PBFT with (a) a primary that may crash at
any point, (b) a primary dead from the start — every ordering recovers
through a view change — and (c) an equivocating primary plus a crashed
backup.  ``--all-protocols`` adds Zyzzyva and SBFT crash-recovery cells.
State/transition counts are deterministic; ``--expected`` diffs them
against the checked-in ``MCK_EXPECTATIONS.json`` so a state-space change
shows up as a reviewable diff.

Any violation is serialized as a replayable JSON trace.  ``--replay``
re-executes such a trace event by event, validating each step against
the recorded labels.  ``--revert-demo`` re-introduces a fixed recovery
bug (stale-slot eviction in ``adopt_new_view``, PR 3) under a
monkeypatch and lets the checker's randomized deferral hunt rediscover
it, shrink the trace to a local minimum, and write the counterexample.

Run with::

    python examples/model_check.py [--cells NAME ...] [--all-protocols]
        [--json OUT.json] [--expected MCK_EXPECTATIONS.json]
        [--artifact-dir DIR] [--replay TRACE.json [--reverted-fix]]
        [--revert-demo [--out TRACE.json]]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fabric.modelcheck import (
    EXTRA_CELLS,
    MODEL_CHECK_CELLS,
    explore,
    load_trace,
    replay_trace,
    write_counterexample,
)
from repro.fabric.revertdemo import (
    REVERT_DEMO_WALK_SEED,
    reverted_stale_slot_fix,
    run_revert_demo,
)
from repro.fabric.scenarios import unknown_name_message


def run_replay(path: str, reverted_fix: bool) -> int:
    config, entries = load_trace(path)
    print(f"replaying {len(entries)} events against {config.protocol} "
          f"(timer_gate={config.timer_gate})")
    if reverted_fix:
        with reverted_stale_slot_fix():
            _cluster, violations = replay_trace(config, entries)
    else:
        _cluster, violations = replay_trace(config, entries)
    if violations:
        print("violations at the final state:")
        for violation in violations:
            print(f"  - [{violation.kind}] {violation.detail}")
    else:
        print("no violations at the final state")
    return 0


def run_demo(out: str, walks: int, walk_seed: int) -> int:
    print("reverting the stale-slot eviction fix (monkeypatched) and "
          "hunting with the pinned deferral-set walk...")
    result = run_revert_demo(walks=walks, walk_seed=walk_seed)
    if not result.found:
        print(f"no violation in {result.walks} walk(s) — the pinned walk "
              "should always find it; a behaviour change upstream moved "
              "the schedule")
        return 1
    assert result.counterexample is not None
    print(result.counterexample.summary())
    print(f"shrunk {len(result.counterexample.trace)} -> "
          f"{len(result.minimal_trace)} events; replay confirms: "
          f"{[v.kind for v in result.replay_violations]}")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(result.minimal_json(), handle, indent=2)
        handle.write("\n")
    print(f"minimal counterexample written to {out}")
    print(f"replay it with: python examples/model_check.py "
          f"--replay {out} --reverted-fix")
    return 0


def diff_expected(observed: dict, path: str) -> list:
    with open(path, "r", encoding="utf-8") as handle:
        expected = json.load(handle)
    differences = []
    for name, have in observed.items():
        want = expected.get("cells", {}).get(name)
        if want is None:
            differences.append(f"{name}: no recorded expectation")
            continue
        for field in ("states", "transitions", "max_view",
                      "min_quiescent_view"):
            if have[field] != want.get(field):
                differences.append(
                    f"{name}.{field}: observed {have[field]}, "
                    f"recorded {want.get(field)}")
    return differences


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", nargs="*", default=None,
                        help="cell names to explore (default: all default "
                             f"cells: {' '.join(MODEL_CHECK_CELLS)})")
    parser.add_argument("--all-protocols", action="store_true",
                        help="add the Zyzzyva and SBFT crash-recovery cells")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable per-cell results here")
    parser.add_argument("--expected", metavar="PATH", default=None,
                        help="diff state/transition counts against this "
                             "checked-in expectations file (exit non-zero "
                             "on differences)")
    parser.add_argument("--artifact-dir", metavar="DIR", default=".",
                        help="where violating cells drop their replayable "
                             "counterexample JSON (default: cwd)")
    parser.add_argument("--replay", metavar="TRACE.json", default=None,
                        help="replay a serialized counterexample trace "
                             "instead of exploring")
    parser.add_argument("--reverted-fix", action="store_true",
                        help="with --replay: re-introduce the stale-slot "
                             "eviction bug so a revert-demo trace exhibits "
                             "its recorded violation")
    parser.add_argument("--revert-demo", action="store_true",
                        help="seeded-bug demo: revert the stale-slot "
                             "eviction fix and let the checker find it")
    parser.add_argument("--out", metavar="TRACE.json",
                        default="revert_demo.counterexample.json",
                        help="with --revert-demo: where to write the "
                             "minimal counterexample")
    parser.add_argument("--walks", type=int, default=1,
                        help="with --revert-demo: number of hunt walks "
                             "(default 1: replay the pinned walk)")
    parser.add_argument("--walk-seed", type=int,
                        default=REVERT_DEMO_WALK_SEED,
                        help="with --revert-demo: base seed of the hunt")
    args = parser.parse_args(argv)

    if args.replay:
        return run_replay(args.replay, args.reverted_fix)
    if args.revert_demo:
        return run_demo(args.out, args.walks, args.walk_seed)

    cells = dict(MODEL_CHECK_CELLS)
    if args.all_protocols:
        cells.update(EXTRA_CELLS)
    if args.cells:
        known = dict(MODEL_CHECK_CELLS)
        known.update(EXTRA_CELLS)
        unknown = [name for name in args.cells if name not in known]
        if unknown:
            parser.error(unknown_name_message("cell", " ".join(unknown),
                                              known))
        cells = {name: known[name] for name in args.cells}

    observed = {}
    failures = 0
    for name, config in cells.items():
        start = time.time()
        result = explore(config)
        elapsed = time.time() - start
        print(f"{name:24s} {result.summary().splitlines()[0]}  "
              f"min_qview={result.min_quiescent_view}  [{elapsed:.1f}s]")
        observed[name] = {
            "states": result.states_explored,
            "transitions": result.transitions,
            "max_view": result.max_view,
            "min_quiescent_view": result.min_quiescent_view,
            "quiescent_leaves": result.quiescent_leaves,
            "safe": result.ok,
        }
        if not result.ok:
            failures += 1
            path = os.path.join(args.artifact_dir,
                                f"{name}.counterexample.json")
            write_counterexample(result.counterexample, path)
            print(result.counterexample.summary())
            print(f"counterexample written to {path}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"cells": observed}, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.expected:
        differences = diff_expected(observed, args.expected)
        if differences:
            print("state-space drift against recorded expectations:")
            for line in differences:
                print(f"  {line}")
            return 1
        print(f"all {len(observed)} cells match {args.expected}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
