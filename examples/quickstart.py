#!/usr/bin/env python3
"""Quickstart: run PoE consensus on a simulated 4-replica cluster.

This is the smallest end-to-end use of the library: build a cluster, feed
it YCSB transactions, run the deterministic simulator until every batch is
ordered and executed, and inspect the results — client-side throughput and
latency, and the replicated ledger each replica built.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fabric.cluster import Cluster, ClusterConfig
from repro.workload.ycsb import YcsbConfig


def main() -> None:
    # A 4-replica PoE deployment (so f = 1 faulty replica is tolerated)
    # executing real YCSB transactions against a small table.
    config = ClusterConfig(
        protocol="poe",
        num_replicas=4,
        batch_size=10,
        num_clients=1,
        client_outstanding=4,
        total_batches=50,
        execute_operations=True,
        use_ycsb_payload=True,
        ycsb=YcsbConfig(num_records=1_000, write_fraction=0.9, seed=42),
        checkpoint_interval=10,
    )
    cluster = Cluster(config)
    cluster.start()
    cluster.run_until_done(max_ms=60_000)

    result = cluster.result()
    print("PoE quickstart")
    print("--------------")
    print(f"replicas:                {config.num_replicas} (tolerating f = "
          f"{cluster.node_config.f} byzantine)")
    print(f"batches completed:       {result.completed_batches}")
    print(f"transactions completed:  {result.completed_txns}")
    print(f"simulated throughput:    {result.throughput_txn_per_s:,.0f} txn/s")
    print(f"average client latency:  {result.avg_latency_ms:.2f} ms")
    print()

    # Every non-faulty replica built the same hash-chained ledger and the
    # same key-value state — that is PoE's (speculative) non-divergence.
    heads = {replica.blockchain.head.block_hash for replica in cluster.replicas}
    states = {replica.store.snapshot_digest() for replica in cluster.replicas}
    print(f"ledger length per replica: {len(cluster.replicas[0].blockchain)} blocks")
    print(f"distinct ledger heads:     {len(heads)} (expected 1)")
    print(f"distinct store states:     {len(states)} (expected 1)")
    assert len(heads) == 1 and len(states) == 1
    print("all replicas agree on the order and effect of every transaction")


if __name__ == "__main__":
    main()
